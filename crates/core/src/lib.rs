//! Error-masking circuit synthesis for timing errors on speed-paths —
//! the primary contribution of Choudhury & Mohanram, *"Masking timing
//! errors on speed-paths in logic circuits"*, DATE 2009.
//!
//! Given a technology-mapped combinational circuit, [`synthesize`]
//! builds a **non-intrusive error-masking circuit**: a side circuit that
//! (i) predicts the value of every critical output whenever a
//! speed-path is sensitized, (ii) raises an indicator `e` on exactly
//! those patterns, and (iii) has at least 20 % timing slack over the
//! original, making it immune to the very timing errors it masks. A
//! 2-to-1 MUX per critical output (with `e` on select) splices the
//! prediction in at the output — the original circuit is not modified.
//!
//! - [`synthesize`] — the §4 synthesis flow (SPCF → technology-
//!   independent simplification by essential-weight cube selection →
//!   mapping with slack enforcement → MUX integration).
//! - [`verify()`](fn@verify) — exact BDD verification: `Σ_y ⇒ e`, `e ⇒ (ỹ ≡ y)`,
//!   and functional transparency of the combined design (the paper's
//!   100 % masking coverage).
//! - [`inject`] — dynamic demonstration: age the gates, clock at the
//!   original period, and watch raw errors appear while masked outputs
//!   stay clean.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tm_masking::{synthesize, verify, MaskingOptions};
//! use tm_netlist::{circuits::comparator2, library::lsi10k_like};
//!
//! let nl = comparator2(Arc::new(lsi10k_like()));
//! let mut result = synthesize(&nl, MaskingOptions::default());
//! assert_eq!(result.report.critical_outputs, 1);
//! assert!(result.report.slack_percent >= 20.0);
//! assert!(verify(&mut result).all_ok()); // 100% masking, exactly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod design;
pub mod inject;
pub mod options;
pub mod report;
pub mod synth;
pub mod verify;

pub use ablation::duplication_masking;
pub use design::{MaskedDesign, ProbeTriple, ProtectedOutput};
pub use inject::{inject_and_measure, original_only_aging, speedpath_patterns, uniform_aging, InjectionOutcome};
pub use options::{CubeSelection, MaskingOptions};
pub use report::MaskingReport;
pub use synth::{synthesize, synthesize_sweep, DegradationLevel, MaskingResult, SweepPoint};
pub use verify::{verify, OutputVerdict, VerificationReport};
