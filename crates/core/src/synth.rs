//! Synthesis of the error-masking circuit (paper §4).
//!
//! Flow, following §4.1:
//!
//! 1. Run STA; compute the SPCF of every critical output at
//!    `Δ_y = target_fraction × Δ` with the short-path engine of §3.
//! 2. Extract the technology-independent network `T` of the original
//!    circuit (complex nodes of 10–15 inputs).
//! 3. For every node in the fanin cone of a critical output, prune the
//!    on-set and off-set covers by **essential weight** against the
//!    node's care set (the union of the SPCFs of the critical outputs
//!    whose cones contain it): cubes in ascending literal-count order; a
//!    cube survives iff it covers care patterns no earlier cube covered.
//!    The reduced covers `n⁰, n¹` give the prediction `ñ = n¹` and the
//!    indicator `e = n⁰ ⊕ n¹` (Eqn. 2), and `e` is re-minimized and
//!    pruned the same way.
//! 4. Assemble the masking network `T̃` (reduced nodes + per-node `e`
//!    nodes + an AND-reduction tree producing `e_y` per output), map it
//!    onto the library, and enforce ≥ `slack_fraction` timing slack over
//!    the original by gate sizing.
//! 5. Attach `T̃` beside the untouched original and insert one 2-to-1
//!    MUX per protected output (`e` on select; Fig. 1).

use crate::design::{MaskedDesign, ProtectedOutput};
use crate::options::{CubeSelection, MaskingOptions};
use crate::report::MaskingReport;
use std::collections::HashMap;
use std::time::Instant;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::{qm, Cube, Sop, TruthTable};
use tm_netlist::extract::extract;
use tm_netlist::map::tech_map;
use tm_netlist::sop_network::{SigId, SigKind, SopNetwork};
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::Budget;
use tm_spcf::{try_spcf_with, Algorithm, SpcfOptions, SpcfSet, WarmSession};
use tm_sta::Sta;

/// How far the SPCF engine ladder had to degrade to fit the
/// computation budget (DESIGN.md §7).
///
/// Every rung is *sound*: a coarser rung computes a superset of the
/// exact SPCF, so the synthesized mask still covers every true
/// speed-path activation pattern — degradation costs area, never
/// correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// The exact short-path SPCF fit the budget (the paper's flow).
    Exact,
    /// The exact engine exhausted the budget; the node-based
    /// over-approximation (§3.1) was used instead.
    NodeBased,
    /// Even the node-based pass exhausted the budget; every pattern is
    /// guarded on every structurally critical output (duplication-level
    /// area, full coverage).
    Conservative,
}

impl std::fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradationLevel::Exact => "exact",
            DegradationLevel::NodeBased => "node_based",
            DegradationLevel::Conservative => "conservative",
        })
    }
}

/// Runs the SPCF engine ladder: exact short-path → node-based
/// over-approximation → guard-everything, stepping down only when the
/// budget is exhausted. Each rung starts from a fresh BDD manager so a
/// blown-up rung leaves no memory behind. Every rung dispatches through
/// the engine-session driver, so `jobs > 1` shards critical outputs
/// across workers with no effect on the result (DESIGN.md §8).
fn spcf_ladder(
    netlist: &Netlist,
    sta: &Sta<'_>,
    target: Delay,
    budget: Budget,
    jobs: usize,
) -> (Bdd, SpcfSet, DegradationLevel) {
    let num_vars = netlist.inputs().len().max(1);
    let options = SpcfOptions::default().with_jobs(jobs).with_budget(budget);
    let rungs = [
        (Algorithm::ShortPath, DegradationLevel::Exact, "resilience.fallback.node_based", "short-path", "node-based"),
        (Algorithm::NodeBased, DegradationLevel::NodeBased, "resilience.fallback.conservative", "node-based", "guard-everything"),
    ];
    for (algorithm, level, fallback_counter, name, next) in rungs {
        let mut bdd = Bdd::new(num_vars);
        match try_spcf_with(algorithm, netlist, sta, &mut bdd, target, &options) {
            Ok(spcf) => return (bdd, spcf, level),
            Err(e) => {
                tm_telemetry::counter_add(fallback_counter, 1);
                if tm_telemetry::trace_level() >= 2 {
                    eprintln!("[synth] {name} SPCF: {e}; falling back to {next}");
                }
            }
        }
    }
    // The guard-everything rung does no budgeted work; run it serial
    // and unlimited.
    let mut bdd = Bdd::new(num_vars);
    let spcf = try_spcf_with(
        Algorithm::Conservative,
        netlist,
        sta,
        &mut bdd,
        target,
        &SpcfOptions::default(),
    )
    .expect("the guard-everything engine performs no budgeted work");
    (bdd, spcf, DegradationLevel::Conservative)
}

/// Everything `synthesize` produces: the design, the SPCFs (with their
/// BDD manager, needed for verification and counting), and the report.
pub struct MaskingResult {
    /// The synthesized masked design.
    pub design: MaskedDesign,
    /// BDD manager the SPCFs (and verification) live in.
    pub bdd: Bdd,
    /// The SPCF set the synthesis protected against.
    pub spcf: SpcfSet,
    /// Metrics mirroring the columns of Table 2.
    pub report: MaskingReport,
}

impl std::fmt::Debug for MaskingResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MaskingResult({:?})", self.report)
    }
}

/// Synthesizes the error-masking circuit for a mapped netlist.
///
/// # Panics
///
/// Panics if the options are invalid (see
/// [`MaskingOptions::validate`]) or internal invariants are violated
/// (cover selection failing to cover its care set indicates a bug, not
/// an input condition).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_masking::{synthesize, MaskingOptions};
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like};
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let result = synthesize(&nl, MaskingOptions::default());
/// assert!(result.design.is_protected());
/// assert!(result.report.slack_percent >= 20.0);
/// ```
pub fn synthesize(netlist: &Netlist, options: MaskingOptions) -> MaskingResult {
    options.validate();
    let _span = tm_telemetry::span!("masking.synthesize");
    let start = Instant::now();
    let sta = Sta::new(netlist);
    let delta = sta.critical_path_delay();
    let target = delta * options.target_fraction;

    let (mut bdd, spcf, degradation) = {
        let _s = tm_telemetry::span!("masking.spcf");
        spcf_ladder(netlist, &sta, target, options.budget, options.jobs)
    };
    let (design, report) =
        synthesize_from_spcf(netlist, &mut bdd, &spcf, delta, target, degradation, &options, start);
    bdd.publish_metrics();
    MaskingResult { design, bdd, spcf, report }
}

/// One point of [`synthesize_sweep`]: the masked design and its report
/// at one target fraction, plus the SPCF summary statistic the sweep
/// binaries print.
#[derive(Debug)]
pub struct SweepPoint {
    /// The target fraction this point protects (`Δ_y = fraction × Δ`).
    pub fraction: f64,
    /// The synthesized masked design at this point.
    pub design: MaskedDesign,
    /// Metrics at this point ([`MaskingReport::synthesis_time`] is the
    /// per-point compute time, SPCF included).
    pub report: MaskingReport,
    /// Mean per-output SPCF fraction of the input space.
    pub mean_spcf_fraction: f64,
}

/// Synthesizes masking for a ladder of target fractions against **one
/// warm SPCF session**: one BDD manager, one prime cache, one
/// global-BDD cache, and one short-path memo serve every point instead
/// of being rebuilt per threshold.
///
/// Fractions are evaluated in descending-`Δ_y` order (highest fraction
/// first), so each point only extends the memoized stabilization
/// queries of the previous one — the monotonicity
/// `Σ_y(Δ') ⊆ Σ_y(Δ)` for `Δ' ≥ Δ` means a tighter target revisits the
/// same cone with earlier query times that are already partially
/// cached. Points are returned in that evaluation order, tagged with
/// their fraction.
///
/// A point whose warm computation exhausts the budget falls back to
/// the cold per-point ladder of [`synthesize`] (fresh manager per
/// rung, honoring `options.jobs`), so degraded points cost what they
/// always did and warm points are pure win.
///
/// # Panics
///
/// Panics if the options are invalid or `fractions` is empty.
pub fn synthesize_sweep(
    netlist: &Netlist,
    fractions: &[f64],
    options: &MaskingOptions,
) -> Vec<SweepPoint> {
    options.validate();
    assert!(!fractions.is_empty(), "sweep needs at least one fraction");
    let _span = tm_telemetry::span!("masking.sweep");
    let sta = Sta::new(netlist);
    let delta = sta.critical_path_delay();
    let mut ladder = fractions.to_vec();
    ladder.sort_by(|a, b| b.total_cmp(a));

    let mut bdd = Bdd::new(netlist.inputs().len().max(1));
    let mut session =
        WarmSession::new(Algorithm::ShortPath, netlist, &sta, &mut bdd, options.budget);
    let mut points = Vec::with_capacity(ladder.len());
    for frac in ladder {
        let start = Instant::now();
        let target = delta * frac;
        let point = match session.try_retarget(target) {
            Ok(spcf) => {
                let mean_spcf_fraction = mean_spcf_fraction(session.bdd(), &spcf);
                let (design, report) = synthesize_from_spcf(
                    netlist,
                    session.bdd_mut(),
                    &spcf,
                    delta,
                    target,
                    DegradationLevel::Exact,
                    options,
                    start,
                );
                SweepPoint { fraction: frac, design, report, mean_spcf_fraction }
            }
            Err(e) => {
                if tm_telemetry::trace_level() >= 2 {
                    eprintln!("[sweep] warm short-path SPCF at {frac}: {e}; cold ladder");
                }
                let r =
                    synthesize(netlist, MaskingOptions { target_fraction: frac, ..*options });
                let mean_spcf_fraction = mean_spcf_fraction(&r.bdd, &r.spcf);
                SweepPoint {
                    fraction: frac,
                    design: r.design,
                    report: r.report,
                    mean_spcf_fraction,
                }
            }
        };
        points.push(point);
    }
    drop(session);
    bdd.publish_metrics();
    points
}

/// Mean per-output SPCF fraction of the input space (zero when no
/// output is critical).
fn mean_spcf_fraction(bdd: &Bdd, spcf: &SpcfSet) -> f64 {
    if spcf.outputs.is_empty() {
        return 0.0;
    }
    spcf.outputs.iter().map(|o| bdd.sat_fraction(o.spcf)).sum::<f64>() / spcf.outputs.len() as f64
}

/// The synthesis flow from a computed SPCF set onward: cover
/// selection, masking-network assembly, mapping, slack enforcement,
/// and measurement. Factored out so [`synthesize`] (cold per-call
/// ladder) and [`synthesize_sweep`] (one warm SPCF session across a
/// descending `Δ_y` ladder) share it exactly.
#[allow(clippy::too_many_arguments)]
fn synthesize_from_spcf(
    netlist: &Netlist,
    bdd: &mut Bdd,
    spcf: &SpcfSet,
    delta: Delay,
    target: Delay,
    degradation: DegradationLevel,
    options: &MaskingOptions,
    start: Instant,
) -> (MaskedDesign, MaskingReport) {
    // Progress eprintln's are the verbose tier: structured spans and
    // counters cover TM_TRACE=1, the log lines only appear at 2.
    let trace = tm_telemetry::trace_level() >= 2;
    macro_rules! trace {
        ($($arg:tt)*) => { if trace { eprintln!($($arg)*); } };
    }
    trace!("[synth {:?}] spcf ladder settled at {degradation}", start.elapsed());
    // The guard-everything rung has no per-pattern information to prune
    // against, and essential-weight selection would only rediscover the
    // full covers at BDD cost — force the FullCover path, which needs
    // no global BDDs at all.
    let cube_selection = match degradation {
        DegradationLevel::Conservative => CubeSelection::FullCover,
        _ => options.cube_selection,
    };
    let zero = bdd.zero();
    let protected_outputs: Vec<(NetId, BddRef)> = spcf
        .outputs
        .iter()
        .filter(|o| o.spcf != zero)
        .map(|o| (o.output, o.spcf))
        .collect();

    if protected_outputs.is_empty() {
        let design = MaskedDesign::unprotected(netlist.clone());
        let report = MaskingReport::measure(&design, spcf, bdd, delta, target, options.slack_fraction, degradation, start.elapsed());
        return (design, report);
    }

    // Technology-independent view of the original circuit. Global BDDs
    // are only needed to prune covers against care sets, so the
    // FullCover path (including the conservative rung, where they could
    // blow up on exactly the circuits that exhausted the budget) skips
    // building them entirely.
    trace!("[synth {:?}] spcf done", start.elapsed());
    let use_care = cube_selection == CubeSelection::EssentialWeight;
    let extract_span = tm_telemetry::span!("masking.extract");
    let tin = extract(netlist, options.extract);
    trace!("[synth {:?}] extract done ({} nodes)", start.elapsed(), tin.num_nodes());
    let globals: Vec<BddRef> = if use_care { tin.global_bdds(bdd) } else { Vec::new() };
    trace!("[synth {:?}] globals done", start.elapsed());
    drop(extract_span);

    // Structural cone membership gates which nodes get mask logic; the
    // care set per node (union of the SPCFs of critical outputs whose
    // fanin cone contains it) exists only on the essential-weight path.
    // The two gates agree: every protected output has a non-zero SPCF,
    // so `care[sig] != zero` exactly when `in_cone[sig]`.
    let sig_count = tin.num_sigs();
    let mut in_cone = vec![false; sig_count];
    let mut care: Vec<BddRef> = vec![zero; if use_care { sig_count } else { 0 }];
    let mut out_sig_of: HashMap<NetId, SigId> = HashMap::new();
    for (net, sigma) in &protected_outputs {
        let pos = netlist
            .outputs()
            .iter()
            .position(|o| o == net)
            .expect("SPCF output is a primary output");
        let y_sig = tin.outputs()[pos];
        out_sig_of.insert(*net, y_sig);
        for sig in tin.fanin_cone(y_sig) {
            if matches!(tin.kind(sig), SigKind::Node(_)) {
                in_cone[sig.index()] = true;
                if use_care {
                    let c = care[sig.index()];
                    care[sig.index()] = bdd.or(c, *sigma);
                }
            }
        }
    }

    // Per-node reduced covers and indicator covers.
    struct MaskNode {
        prediction: Sop,
        /// `None` when the indicator is tautologically 1.
        indicator: Option<Sop>,
    }
    let mut mask_nodes: HashMap<SigId, MaskNode> = HashMap::new();
    let covers_span = tm_telemetry::span!("masking.covers");
    for sig in tin.node_sigs() {
        if !in_cone[sig.index()] {
            continue;
        }
        let node = tin.node_of(sig).expect("node sig");
        let arity = node.inputs().len();
        let tt = node.truth_table();
        let on_cover = node.cover().sorted_by_literal_count();
        let off_cover = qm::minimize(&!&tt, &TruthTable::zero(arity)).sorted_by_literal_count();

        // BDD context for essential-weight selection; the FullCover
        // path needs none of it.
        let care_ctx = if use_care {
            let input_globals: Vec<BddRef> =
                node.inputs().iter().map(|i| globals[i.index()]).collect();
            Some((input_globals, care[sig.index()]))
        } else {
            None
        };

        let (sel_on, sel_off) = match &care_ctx {
            Some((input_globals, care_sig)) => {
                let f_sig = globals[sig.index()];
                let not_f = bdd.not(f_sig);
                let care_on = bdd.and(*care_sig, f_sig);
                let care_off = bdd.and(*care_sig, not_f);
                (
                    select_cover_by_essential_weight(bdd, &on_cover, input_globals, care_on),
                    select_cover_by_essential_weight(bdd, &off_cover, input_globals, care_off),
                )
            }
            None => (on_cover.clone(), off_cover.clone()),
        };

        // Indicator e = n⁰ ⊕ n¹ (Eqn. 2), then pruned against the care
        // set (the paper's further simplification).
        let on_tt = TruthTable::from_sop(arity, &sel_on);
        let off_tt = TruthTable::from_sop(arity, &sel_off);
        let e_tt = &on_tt ^ &off_tt;
        let e_cover = qm::minimize(&e_tt, &TruthTable::zero(arity)).sorted_by_literal_count();
        let e_final = match &care_ctx {
            Some((input_globals, care_sig)) => {
                select_cover_by_essential_weight(bdd, &e_cover, input_globals, *care_sig)
            }
            None => e_cover,
        };

        if trace && start.elapsed().as_secs() >= 2 {
            trace!("[synth {:?}] node {} arity {} on={} off={} e={}", start.elapsed(), tin.sig_name(sig), arity, sel_on.len(), sel_off.len(), e_final.len());
        }
        // A tautological indicator (e.g. for a node whose on/off covers
        // partition the whole local space, like an inverter) carries no
        // information: skip it so it neither becomes hardware nor an
        // AND-tree input.
        let e_is_tautology = TruthTable::from_sop(arity, &e_final).is_one();
        mask_nodes.insert(
            sig,
            MaskNode {
                prediction: sel_on,
                indicator: if e_is_tautology { None } else { Some(e_final) },
            },
        );
    }
    drop(covers_span);
    tm_telemetry::counter_add("masking.synth.nodes_masked", mask_nodes.len() as u64);
    trace!("[synth {:?}] node covers done ({} nodes)", start.elapsed(), mask_nodes.len());

    // Assemble the masking network: mirrored reduced nodes, per-node e
    // nodes, and an AND tree per protected output.
    let mut mnet = SopNetwork::new(format!("{}_mask", netlist.name()));
    let mut pred_sig: HashMap<SigId, SigId> = HashMap::new();
    let mut e_sig: HashMap<SigId, SigId> = HashMap::new();
    for &pi in tin.inputs() {
        let new = mnet.add_input(tin.sig_name(pi).to_string());
        pred_sig.insert(pi, new);
    }
    for sig in tin.node_sigs() {
        let Some(mask) = mask_nodes.get(&sig) else { continue };
        let node = tin.node_of(sig).expect("node");
        let inputs: Vec<SigId> = node.inputs().iter().map(|i| pred_sig[i]).collect();
        let name = tin.sig_name(sig);
        let p = mnet.add_node(format!("pred_{name}"), inputs.clone(), mask.prediction.clone());
        pred_sig.insert(sig, p);
        if let Some(ind) = &mask.indicator {
            let e = mnet.add_node(format!("e_{name}"), inputs, ind.clone());
            e_sig.insert(sig, e);
        }
    }

    // e_y = AND over the e's of every node in the cone (paper §4.1),
    // reduced through a bounded-arity AND tree.
    let mut masked_meta: Vec<(NetId, usize, usize)> = Vec::new(); // (orig net, ytilde pos, e pos)
    for (net, _sigma) in &protected_outputs {
        let y_sig = out_sig_of[net];
        let cone_es: Vec<SigId> = tin
            .fanin_cone(y_sig)
            .into_iter()
            .filter_map(|s| e_sig.get(&s).copied())
            .collect();
        let name = netlist.net_name(*net);
        let ey = and_tree(&mut mnet, &cone_es, options.and_tree_arity, &format!("ey_{name}"));
        let ytilde = pred_sig[&y_sig];
        let yt_pos = mnet.outputs().len();
        mnet.mark_output(ytilde);
        let e_pos = mnet.outputs().len();
        mnet.mark_output(ey);
        masked_meta.push((*net, yt_pos, e_pos));
    }
    let (mnet, _sig_map) = mnet.sweep();
    trace!("[synth {:?}] masking network assembled ({} nodes)", start.elapsed(), mnet.num_nodes());

    // Map the masking network, clean it up, and enforce the slack
    // budget.
    let map_span = tm_telemetry::span!("masking.map");
    let mapped = tech_map(&mnet, netlist.library().clone(), options.map);
    let (mut masking, cleanup_stats) = tm_netlist::cleanup::cleanup(&mapped);
    drop(map_span);
    trace!(
        "[synth {:?}] mapped ({} gates, cleanup removed {})",
        start.elapsed(),
        masking.num_gates(),
        cleanup_stats.removed()
    );
    let slack_budget = delta * (1.0 - options.slack_fraction);
    {
        let _s = tm_telemetry::span!("masking.slack");
        enforce_slack(&mut masking, slack_budget, options.sizing_iterations);
    }
    trace!("[synth {:?}] slack enforced", start.elapsed());

    let design = assemble_masked_design(netlist, masking, &masked_meta);
    trace!("[synth {:?}] combined built ({} gates)", start.elapsed(), design.combined.num_gates());
    let report = MaskingReport::measure(&design, spcf, bdd, delta, target, options.slack_fraction, degradation, start.elapsed());
    trace!("[synth {:?}] measured", start.elapsed());
    (design, report)
}

/// Assembles the combined masked design (Fig. 1): fresh inputs, the
/// original absorbed untouched, the masking circuit beside it, and one
/// MUX per protected output.
///
/// `masked_meta` pairs each protected original output net with the
/// positions of its `ỹ` and `e` outputs in the masking netlist.
pub(crate) fn assemble_masked_design(
    netlist: &Netlist,
    masking: Netlist,
    masked_meta: &[(NetId, usize, usize)],
) -> MaskedDesign {
    let mut combined =
        Netlist::new(format!("{}_masked", netlist.name()), netlist.library().clone());
    let pis: Vec<NetId> = netlist
        .inputs()
        .iter()
        .map(|&i| combined.add_input(netlist.net_name(i).to_string()))
        .collect();
    let orig_map = combined.absorb(netlist, &pis);
    let mask_map = combined.absorb(&masking, &pis);
    let lib = netlist.library();
    let mux_cell = lib.expect("MUX2");

    let mut protected = Vec::new();
    for (net, yt_pos, e_pos) in masked_meta {
        let ytilde_m = masking.outputs()[*yt_pos];
        let e_m = masking.outputs()[*e_pos];
        let y_c = orig_map[net];
        let yt_c = mask_map[&ytilde_m];
        let e_c = mask_map[&e_m];
        let name = format!("masked_{}", netlist.net_name(*net));
        let masked = combined.add_gate(mux_cell, &[y_c, yt_c, e_c], name);
        protected.push(ProtectedOutput {
            position: netlist.outputs().iter().position(|o| o == net).expect("output"),
            original: *net,
            ytilde: ytilde_m,
            e: e_m,
            masked,
            ytilde_combined: yt_c,
            e_combined: e_c,
            original_combined: y_c,
        });
    }
    for (pos, &o) in netlist.outputs().iter().enumerate() {
        match protected.iter().find(|p| p.position == pos) {
            Some(p) => combined.mark_output(p.masked),
            None => combined.mark_output(orig_map[&o]),
        }
    }

    MaskedDesign { original: netlist.clone(), masking, combined, protected }
}

/// Essential-weight cover selection (paper §4.1): keep the cubes, in
/// ascending literal-count order, that cover care patterns no earlier
/// cube covered; then drop selected cubes made redundant by later picks.
///
/// # Panics
///
/// Panics if the cover does not cover the care set (cannot happen for
/// covers of the node function and care sets within it).
fn select_cover_by_essential_weight(
    bdd: &mut Bdd,
    cover: &Sop,
    input_globals: &[BddRef],
    care: BddRef,
) -> Sop {
    let arity = cover.num_vars();
    tm_telemetry::counter_add("masking.synth.selection_rounds", 1);
    tm_telemetry::counter_add("masking.synth.cubes_considered", cover.cubes().len() as u64);
    let mut remaining = care;
    let mut selected: Vec<(Cube, BddRef)> = Vec::new();
    for cube in cover.cubes() {
        if remaining == bdd.zero() {
            break;
        }
        let cond = cube_condition(bdd, cube, input_globals);
        let hit = bdd.and(remaining, cond);
        if hit != bdd.zero() {
            selected.push((*cube, cond));
            remaining = bdd.diff(remaining, cond);
        }
    }
    assert!(
        remaining == bdd.zero(),
        "cover selection failed to cover its care set (internal invariant)"
    );
    // Irredundancy pass: a cube whose care contribution is covered by
    // the other selected cubes can go (scan largest cubes last so small
    // specific cubes are dropped first).
    let mut keep = vec![true; selected.len()];
    for i in (0..selected.len()).rev() {
        let others: Vec<BddRef> = selected
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && keep[*j])
            .map(|(_, (_, cond))| *cond)
            .collect();
        let union = bdd.or_all(others);
        let care_i = bdd.and(care, selected[i].1);
        if bdd.is_subset(care_i, union) {
            keep[i] = false;
        }
    }
    let cubes: Vec<Cube> = selected
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|((c, _), _)| c)
        .collect();
    tm_telemetry::counter_add("masking.synth.cubes_kept", cubes.len() as u64);
    Sop::from_cubes(arity, cubes)
}

/// Global condition of a local cube: conjunction of its literals'
/// global functions.
fn cube_condition(bdd: &mut Bdd, cube: &Cube, input_globals: &[BddRef]) -> BddRef {
    let lits: Vec<BddRef> = cube
        .literals()
        .map(|(pos, pol)| {
            let f = input_globals[pos];
            if pol {
                f
            } else {
                bdd.not(f)
            }
        })
        .collect();
    bdd.and_all(lits)
}

/// Builds a bounded-arity AND-reduction tree over `sigs`, returning the
/// root (or a constant-one node for an empty set).
fn and_tree(net: &mut SopNetwork, sigs: &[SigId], arity: usize, name: &str) -> SigId {
    if sigs.is_empty() {
        return net.add_node(format!("{name}_const1"), Vec::new(), Sop::one(0));
    }
    let mut layer: Vec<SigId> = sigs.to_vec();
    let mut level = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(arity));
        for (j, chunk) in layer.chunks(arity).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let k = chunk.len();
            let cube = Cube::from_literals(k, &(0..k).map(|i| (i, true)).collect::<Vec<_>>());
            let sig = net.add_node(
                format!("{name}_l{level}_{j}"),
                chunk.to_vec(),
                Sop::from_cubes(k, vec![cube]),
            );
            next.push(sig);
        }
        layer = next;
        level += 1;
    }
    layer[0]
}

/// Upsizes gates on the worst paths of `masking` until its critical
/// path delay fits within `budget` (or no further sizing helps).
///
/// Returns `true` when the budget is met.
pub(crate) fn enforce_slack(masking: &mut Netlist, budget: Delay, max_iterations: usize) -> bool {
    for _ in 0..max_iterations {
        let sta = Sta::new(masking);
        let delay = sta.critical_path_delay();
        if delay <= budget {
            return true;
        }
        // Find the worst output and upsize the slowest still-sizable
        // gate on its worst path.
        let worst_out = masking
            .outputs()
            .iter()
            .copied()
            .max_by(|a, b| sta.arrival(*a).units().total_cmp(&sta.arrival(*b).units()))
            .expect("masking circuit has outputs");
        let path = sta.worst_path(worst_out);
        let lib = masking.library().clone();
        let mut resized = false;
        for &(gid, _pin) in &path.gates {
            let cell = masking.gate(gid).cell();
            if let Some(fast) = lib.fast_variant(cell) {
                masking.resize_gate(gid, fast);
                resized = true;
            }
        }
        if !resized {
            return false; // whole worst path already at max drive
        }
    }
    let sta = Sta::new(masking);
    sta.critical_path_delay() <= budget
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    fn comparator_result() -> MaskingResult {
        let nl = comparator2(Arc::new(lsi10k_like()));
        synthesize(&nl, MaskingOptions::default())
    }

    #[test]
    fn comparator_is_protected() {
        let r = comparator_result();
        assert!(r.design.is_protected());
        assert_eq!(r.design.protected.len(), 1);
        assert_eq!(r.report.critical_outputs, 1);
        assert_eq!(r.report.critical_patterns, 10.0);
    }

    #[test]
    fn combined_preserves_function() {
        let r = comparator_result();
        let nl = &r.design.original;
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(r.design.combined.eval(&a), nl.eval(&a), "m={m}");
        }
    }

    #[test]
    fn indicator_covers_spcf_and_prediction_correct_under_e() {
        let r = comparator_result();
        let p = &r.design.protected[0];
        let bdd = &r.bdd;
        // Evaluate ỹ and e as functions via the masking netlist.
        let nl = &r.design.masking;
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let vals = nl.eval_all_nets(&a);
            let e = vals[p.e.index()];
            let yt = vals[p.ytilde.index()];
            let y = r.design.original.eval(&a)[p.position];
            let in_spcf = bdd.eval(r.spcf.outputs[0].spcf, &a);
            if in_spcf {
                assert!(e, "pattern {m} in SPCF but e=0");
            }
            if e {
                assert_eq!(yt, y, "pattern {m}: e=1 but prediction wrong");
            }
        }
    }

    #[test]
    fn masking_circuit_has_required_slack() {
        let r = comparator_result();
        assert!(r.report.slack_met, "slack: {}%", r.report.slack_percent);
        assert!(r.report.slack_percent >= 20.0);
    }

    #[test]
    fn full_cover_ablation_is_bigger() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let essential = synthesize(&nl, MaskingOptions::default());
        let full = synthesize(
            &nl,
            MaskingOptions { cube_selection: CubeSelection::FullCover, ..Default::default() },
        );
        assert!(
            full.design.masking.area() >= essential.design.masking.area(),
            "full {} < essential {}",
            full.design.masking.area(),
            essential.design.masking.area()
        );
        // Both remain functionally safe.
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(full.design.combined.eval(&a), nl.eval(&a));
        }
    }

    #[test]
    fn sweep_matches_cold_per_point_synthesis() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let points = synthesize_sweep(&nl, &[0.5, 0.9, 0.99], &MaskingOptions::default());
        assert_eq!(points.len(), 3);
        // Evaluated (and returned) in descending-Δ_y order.
        assert!(points.windows(2).all(|w| w[0].fraction >= w[1].fraction));
        for p in &points {
            let cold = synthesize(
                &nl,
                MaskingOptions { target_fraction: p.fraction, ..Default::default() },
            );
            assert_eq!(
                p.report.critical_outputs, cold.report.critical_outputs,
                "fraction {}",
                p.fraction
            );
            assert_eq!(p.report.critical_patterns, cold.report.critical_patterns);
            assert_eq!(p.design.combined.num_gates(), cold.design.combined.num_gates());
            assert_eq!(p.report.degradation, DegradationLevel::Exact);
            for m in 0..16u64 {
                let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!(p.design.combined.eval(&a), nl.eval(&a), "m={m}");
            }
        }
    }

    #[test]
    fn unprotected_when_target_met() {
        // Target fraction very close to 1.0 with integer delays: no
        // paths between 0.999Δ and Δ except the critical ones... use a
        // circuit-free check instead: raise target_fraction so high that
        // Δ_y ≥ all path delays is impossible (Δ_y < Δ always). Use a
        // balanced circuit where all paths are critical instead.
        let lib = Arc::new(lsi10k_like());
        let nl = tm_netlist::circuits::parity(lib, 4);
        // parity tree: all paths equal length → no path in (0.9Δ, Δ)
        // except the critical ones; every pattern exercises them, so
        // SPCF is the full space and the output is protected.
        let r = synthesize(&nl, MaskingOptions::default());
        assert!(r.design.is_protected());
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(r.design.combined.eval(&a), nl.eval(&a));
        }
    }
}
