//! The masked design: original circuit + error-masking circuit + output
//! multiplexers (paper Fig. 1).

use tm_netlist::{NetId, Netlist};

/// One protected (critical) primary output and its masking signals.
#[derive(Clone, Debug)]
pub struct ProtectedOutput {
    /// Index of the output in the original netlist's output list.
    pub position: usize,
    /// The output net in the original netlist.
    pub original: NetId,
    /// The prediction `ỹ` net in the masking netlist.
    pub ytilde: NetId,
    /// The speed-path indicator `e` net in the masking netlist.
    pub e: NetId,
    /// The multiplexed output net in the combined netlist.
    pub masked: NetId,
    /// The `ỹ` net mapped into the combined netlist.
    pub ytilde_combined: NetId,
    /// The `e` net mapped into the combined netlist.
    pub e_combined: NetId,
    /// The original output net mapped into the combined netlist.
    pub original_combined: NetId,
}

/// A complete masked design.
///
/// `combined` contains the untouched original logic, the masking
/// circuit beside it (sharing primary inputs), and one 2-to-1 MUX per
/// protected output with `e` on the select pin — masking is
/// *non-intrusive*: no gate of the original circuit is modified.
///
/// The combined netlist's outputs are in the original output order;
/// protected positions carry the MUX output, unprotected positions the
/// original net.
#[derive(Clone, Debug)]
pub struct MaskedDesign {
    /// The original circuit, untouched.
    pub original: Netlist,
    /// The standalone masking circuit `C̃` (same primary inputs as the
    /// original; outputs are the `ỹ`/`e` pairs).
    pub masking: Netlist,
    /// Original + masking + MUXes.
    pub combined: Netlist,
    /// The protected outputs.
    pub protected: Vec<ProtectedOutput>,
}

impl MaskedDesign {
    /// A design with no protected outputs (no speed-paths at the chosen
    /// target): the combined netlist is just the original.
    pub fn unprotected(original: Netlist) -> Self {
        let masking = Netlist::new(format!("{}_mask", original.name()), original.library().clone());
        MaskedDesign {
            combined: original.clone(),
            masking,
            original,
            protected: Vec::new(),
        }
    }

    /// Whether any outputs are protected.
    pub fn is_protected(&self) -> bool {
        !self.protected.is_empty()
    }

    /// The protected-output record for an original output net, if that
    /// output is protected.
    pub fn protection_of(&self, original_output: NetId) -> Option<&ProtectedOutput> {
        self.protected.iter().find(|p| p.original == original_output)
    }

    /// Area of the masking logic added on top of the original (masking
    /// gates + MUXes), in library units.
    pub fn added_area(&self) -> f64 {
        self.combined.area() - self.original.area()
    }

    /// Area overhead as a fraction of the original area.
    pub fn area_overhead(&self) -> f64 {
        if self.original.area() == 0.0 {
            0.0
        } else {
            self.added_area() / self.original.area()
        }
    }

    /// Gate-index partition of the combined netlist:
    /// `(original, masking, muxes)` ranges, in combined `GateId` index
    /// space. Useful for targeting aging at the original logic only.
    pub fn combined_partition(&self) -> (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>) {
        let o = self.original.num_gates();
        let m = o + self.masking.num_gates();
        let total = self.combined.num_gates();
        (0..o, o..m, m..total)
    }

    /// A probe-instrumented copy of the combined netlist: the real
    /// outputs first (unchanged order), then for each protected output a
    /// triple of probe outputs `(raw y, ỹ, e)` in `protected` order.
    ///
    /// Timing simulation of this netlist observes the raw (unmasked)
    /// output beside the masked one — how the injection experiments
    /// demonstrate that errors occur and are hidden.
    pub fn instrumented(&self) -> (Netlist, Vec<ProbeTriple>) {
        let mut nl = self.combined.clone();
        let position_of = |nl: &mut Netlist, net: NetId| -> usize {
            match nl.outputs().iter().position(|&o| o == net) {
                Some(pos) => pos,
                None => {
                    nl.mark_output(net);
                    nl.outputs().len() - 1
                }
            }
        };
        let mut probes = Vec::with_capacity(self.protected.len());
        for p in &self.protected {
            let raw_position = position_of(&mut nl, p.original_combined);
            let ytilde_position = position_of(&mut nl, p.ytilde_combined);
            let e_position = position_of(&mut nl, p.e_combined);
            probes.push(ProbeTriple {
                masked_position: p.position,
                raw_position,
                ytilde_position,
                e_position,
            });
        }
        (nl, probes)
    }
}

/// Output positions of one protected output's probes in an
/// [`MaskedDesign::instrumented`] netlist.
#[derive(Clone, Copy, Debug)]
pub struct ProbeTriple {
    /// Position of the masked output among the real outputs.
    pub masked_position: usize,
    /// Position of the raw (unmasked) original output probe.
    pub raw_position: usize,
    /// Position of the `ỹ` probe.
    pub ytilde_position: usize,
    /// Position of the `e` probe.
    pub e_position: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn unprotected_design_is_identity() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let d = MaskedDesign::unprotected(nl.clone());
        assert!(!d.is_protected());
        assert_eq!(d.added_area(), 0.0);
        assert_eq!(d.area_overhead(), 0.0);
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(d.combined.eval(&a), nl.eval(&a));
        }
        assert!(d.protection_of(nl.outputs()[0]).is_none());
    }
}
