//! Dynamic timing-error injection experiments.
//!
//! Exact verification shows masking is *logically* sound; this module
//! shows it *dynamically* works on the simulated silicon: age the
//! circuit's gates, clock it at the original period, replay a workload
//! through the event-driven timing simulator, and count (i) raw timing
//! errors on the unprotected outputs and (ii) errors that survive
//! masking. With the paper's guarantees, the masked error count is zero
//! whenever aging stays within the protected band (speed-paths within
//! `1 − target_fraction` of `Δ` cover slowdowns up to
//! `1/target_fraction − 1` ≈ 11 %).

use crate::design::MaskedDesign;
use tm_netlist::{Delay, Netlist};
use tm_sim::timing::TimingSim;

/// Counters from one injection run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Number of simulated clock cycles (vector transitions).
    pub cycles: usize,
    /// Cycles where at least one *raw* protected output mis-sampled.
    pub raw_errors: usize,
    /// Cycles where at least one *masked* output mis-sampled — the
    /// errors that escaped masking.
    pub masked_errors: usize,
    /// Cycles where at least one indicator `e` sampled 1 (speed-path
    /// activity).
    pub activations: usize,
}

impl InjectionOutcome {
    /// Fraction of raw errors hidden by masking (1.0 when none escape).
    pub fn masking_effectiveness(&self) -> f64 {
        if self.raw_errors == 0 {
            1.0
        } else {
            1.0 - self.masked_errors as f64 / self.raw_errors as f64
        }
    }
}

/// Builds per-gate delay scale factors for the *combined* netlist that
/// age every gate of the design by `factor` (original, masking and MUX
/// gates alike — the masking circuit's ≥ 20 % slack is what lets it ride
/// out the same wearout).
pub fn uniform_aging(design: &MaskedDesign, factor: f64) -> Vec<f64> {
    assert!(factor > 0.0, "aging factor must be positive");
    vec![factor; design.combined.num_gates()]
}

/// Ages only the original logic (e.g. to model speed-path-local NBTI),
/// leaving the masking circuit and MUXes fresh.
pub fn original_only_aging(design: &MaskedDesign, factor: f64) -> Vec<f64> {
    assert!(factor > 0.0, "aging factor must be positive");
    let (orig, _mask, _mux) = design.combined_partition();
    (0..design.combined.num_gates())
        .map(|g| if orig.contains(&g) { factor } else { 1.0 })
        .collect()
}

/// Replays `vectors` as consecutive clock cycles of period `clock`
/// through the aged combined netlist and counts raw vs masked timing
/// errors.
///
/// # Panics
///
/// Panics if `scale` does not have one entry per combined-netlist gate
/// or vectors have the wrong arity.
pub fn inject_and_measure(
    design: &MaskedDesign,
    scale: &[f64],
    clock: Delay,
    vectors: &[Vec<bool>],
) -> InjectionOutcome {
    let (instrumented, probes) = design.instrumented();
    // The instrumented netlist has the same gates as the combined one.
    assert_eq!(scale.len(), instrumented.num_gates(), "one scale factor per gate");
    let sim = TimingSim::with_scale(&instrumented, scale.to_vec());

    // The MUXed outputs are captured one (aged) MUX delay after the
    // nominal edge — the mux sits inside the capture stage, the
    // "marginal, quantifiable impact" the paper compensates during
    // synthesis. Everything else samples at the nominal clock.
    let lib = instrumented.library().clone();
    let mut sample_times = vec![clock; instrumented.outputs().len()];
    for p in design.protected.iter() {
        let masked_net = p.masked;
        if let tm_netlist::Driver::Gate(mux) = instrumented.driver(masked_net) {
            let cell = lib.cell(instrumented.gate(mux).cell());
            let mux_delay = cell.max_delay() * scale[mux.index()];
            sample_times[p.position] = clock + mux_delay;
        }
    }

    let mut outcome = InjectionOutcome::default();
    for pair in vectors.windows(2) {
        let r = sim.transition_with_sample_times(&pair[0], &pair[1], &sample_times);
        outcome.cycles += 1;
        let mut raw_bad = false;
        let mut masked_bad = false;
        let mut activated = false;
        for p in &probes {
            if r.sampled[p.raw_position] != r.settled[p.raw_position] {
                raw_bad = true;
            }
            if r.sampled[p.masked_position] != r.settled[p.masked_position] {
                masked_bad = true;
            }
            if r.sampled[p.e_position] {
                activated = true;
            }
        }
        if raw_bad {
            outcome.raw_errors += 1;
        }
        if masked_bad {
            outcome.masked_errors += 1;
        }
        if activated {
            outcome.activations += 1;
        }
    }
    outcome
}

/// Convenience: the instrumented netlist used by
/// [`inject_and_measure`], exposed for custom experiments.
pub fn instrumented_netlist(design: &MaskedDesign) -> Netlist {
    design.instrumented().0
}

/// Draws input vectors (approximately uniformly) from the SPCFs of a
/// synthesis result — patterns guaranteed to sensitize speed-paths.
///
/// Useful for building stress workloads: on deep circuits the SPCF is a
/// thin slice of the input space, so uniform random workloads rarely
/// exercise the speed-paths; realistic wearout and debug experiments mix
/// these patterns in. Outputs cycle round-robin over the critical
/// outputs; deterministic in `seed`.
pub fn speedpath_patterns(
    result: &crate::synth::MaskingResult,
    count: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    use tm_testkit::rng::Rng;
    let mut rng = Rng::seed_from_u64(seed);
    let zero = result.bdd.zero();
    let spcfs: Vec<_> = result
        .spcf
        .outputs
        .iter()
        .filter(|o| o.spcf != zero)
        .map(|o| o.spcf)
        .collect();
    if spcfs.is_empty() {
        return Vec::new();
    }
    (0..count)
        .filter_map(|k| {
            let f = spcfs[k % spcfs.len()];
            result.bdd.sample_sat(f, || rng.next_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MaskingOptions;
    use crate::synth::synthesize;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;
    use tm_sta::Sta;

    #[test]
    fn aged_comparator_errors_are_fully_masked() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay(); // 7 units
        // 8% aging: the 7-unit speed-paths slip past the clock (7.56),
        // everything at ≤ 6.3 stays inside (6.8).
        let scale = uniform_aging(&r.design, 1.08);
        let vectors = random_vectors(4, 400, 11);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors);
        assert!(outcome.raw_errors > 0, "aging should produce raw errors");
        assert_eq!(outcome.masked_errors, 0, "{outcome:?}");
        assert!(outcome.activations >= outcome.raw_errors);
        assert_eq!(outcome.masking_effectiveness(), 1.0);
    }

    #[test]
    fn fresh_silicon_has_no_errors_anywhere() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = uniform_aging(&r.design, 1.0);
        let vectors = random_vectors(4, 200, 3);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors);
        assert_eq!(outcome.raw_errors, 0);
        assert_eq!(outcome.masked_errors, 0);
    }

    #[test]
    fn original_only_aging_also_masked() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = original_only_aging(&r.design, 1.09);
        let vectors = random_vectors(4, 400, 23);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors);
        assert!(outcome.raw_errors > 0);
        assert_eq!(outcome.masked_errors, 0, "{outcome:?}");
    }
}
