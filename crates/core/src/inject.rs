//! Dynamic timing-error injection experiments.
//!
//! Exact verification shows masking is *logically* sound; this module
//! shows it *dynamically* works on the simulated silicon: age the
//! circuit's gates, clock it at the original period, replay a workload
//! through the event-driven timing simulator, and count (i) raw timing
//! errors on the unprotected outputs and (ii) errors that survive
//! masking. With the paper's guarantees, the masked error count is zero
//! whenever aging stays within the protected band (speed-paths within
//! `1 − target_fraction` of `Δ` cover slowdowns up to
//! `1/target_fraction − 1` ≈ 11 %).

use crate::design::MaskedDesign;
use tm_netlist::{Delay, Netlist};
use tm_resilience::{TmError, TmResult};
use tm_sim::timing::TimingSim;

/// Counters from one injection run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Number of simulated clock cycles (vector transitions).
    pub cycles: usize,
    /// Cycles where at least one *raw* protected output mis-sampled.
    pub raw_errors: usize,
    /// Cycles where at least one *masked* output mis-sampled — the
    /// errors that escaped masking.
    pub masked_errors: usize,
    /// Cycles where at least one indicator `e` sampled 1 (speed-path
    /// activity).
    pub activations: usize,
}

impl InjectionOutcome {
    /// Fraction of raw errors hidden by masking, in `[0, 1]`.
    ///
    /// A run with no raw errors (including a zero-cycle run) reports
    /// 1.0 — nothing escaped. More masked than raw errors (possible
    /// when masking hardware itself mis-samples on cycles whose raw
    /// outputs were clean) clamps to 0.0 rather than going negative.
    pub fn masking_effectiveness(&self) -> f64 {
        if self.raw_errors == 0 {
            1.0
        } else {
            (1.0 - self.masked_errors as f64 / self.raw_errors as f64).clamp(0.0, 1.0)
        }
    }
}

/// Validates a per-gate delay scale factor: aging can only be a finite,
/// positive multiplier.
fn check_scale_factor(factor: f64) -> TmResult<()> {
    if !factor.is_finite() || factor <= 0.0 {
        return Err(TmError::invalid_input(format!(
            "aging factor must be finite and positive, got {factor}"
        )));
    }
    Ok(())
}

/// Builds per-gate delay scale factors for the *combined* netlist that
/// age every gate of the design by `factor` (original, masking and MUX
/// gates alike — the masking circuit's ≥ 20 % slack is what lets it ride
/// out the same wearout).
///
/// # Errors
///
/// Returns [`TmError`] when `factor` is non-finite (NaN, ±∞) or not
/// positive.
pub fn uniform_aging(design: &MaskedDesign, factor: f64) -> TmResult<Vec<f64>> {
    check_scale_factor(factor)?;
    Ok(vec![factor; design.combined.num_gates()])
}

/// Ages only the original logic (e.g. to model speed-path-local NBTI),
/// leaving the masking circuit and MUXes fresh.
///
/// # Errors
///
/// Returns [`TmError`] when `factor` is non-finite (NaN, ±∞) or not
/// positive.
pub fn original_only_aging(design: &MaskedDesign, factor: f64) -> TmResult<Vec<f64>> {
    check_scale_factor(factor)?;
    let (orig, _mask, _mux) = design.combined_partition();
    Ok((0..design.combined.num_gates())
        .map(|g| if orig.contains(&g) { factor } else { 1.0 })
        .collect())
}

/// Replays `vectors` as consecutive clock cycles of period `clock`
/// through the aged combined netlist and counts raw vs masked timing
/// errors. Fewer than two vectors means zero cycles: the outcome is
/// all-zero counters (and `masking_effectiveness()` of 1.0), not an
/// error.
///
/// # Errors
///
/// Returns [`TmError`] when `scale` does not have one finite positive
/// entry per combined-netlist gate, or a vector's arity differs from
/// the input count.
pub fn inject_and_measure(
    design: &MaskedDesign,
    scale: &[f64],
    clock: Delay,
    vectors: &[Vec<bool>],
) -> TmResult<InjectionOutcome> {
    let (instrumented, probes) = design.instrumented();
    // The instrumented netlist has the same gates as the combined one.
    if scale.len() != instrumented.num_gates() {
        return Err(TmError::invalid_input(format!(
            "one scale factor per gate: got {}, netlist has {}",
            scale.len(),
            instrumented.num_gates()
        )));
    }
    for &f in scale {
        check_scale_factor(f)?;
    }
    let arity = instrumented.inputs().len();
    if let Some(bad) = vectors.iter().find(|v| v.len() != arity) {
        return Err(TmError::invalid_input(format!(
            "workload vector arity {} does not match {} primary inputs",
            bad.len(),
            arity
        )));
    }
    let sim = TimingSim::with_scale(&instrumented, scale.to_vec());

    // The MUXed outputs are captured one (aged) MUX delay after the
    // nominal edge — the mux sits inside the capture stage, the
    // "marginal, quantifiable impact" the paper compensates during
    // synthesis. Everything else samples at the nominal clock.
    let lib = instrumented.library().clone();
    let mut sample_times = vec![clock; instrumented.outputs().len()];
    for p in design.protected.iter() {
        let masked_net = p.masked;
        if let tm_netlist::Driver::Gate(mux) = instrumented.driver(masked_net) {
            let cell = lib.cell(instrumented.gate(mux).cell());
            let mux_delay = cell.max_delay() * scale[mux.index()];
            sample_times[p.position] = clock + mux_delay;
        }
    }

    let mut outcome = InjectionOutcome::default();
    for pair in vectors.windows(2) {
        let r = sim.transition_with_sample_times(&pair[0], &pair[1], &sample_times);
        outcome.cycles += 1;
        let mut raw_bad = false;
        let mut masked_bad = false;
        let mut activated = false;
        for p in &probes {
            if r.sampled[p.raw_position] != r.settled[p.raw_position] {
                raw_bad = true;
            }
            if r.sampled[p.masked_position] != r.settled[p.masked_position] {
                masked_bad = true;
            }
            if r.sampled[p.e_position] {
                activated = true;
            }
        }
        if raw_bad {
            outcome.raw_errors += 1;
        }
        if masked_bad {
            outcome.masked_errors += 1;
        }
        if activated {
            outcome.activations += 1;
        }
    }
    Ok(outcome)
}

/// Convenience: the instrumented netlist used by
/// [`inject_and_measure`], exposed for custom experiments.
pub fn instrumented_netlist(design: &MaskedDesign) -> Netlist {
    design.instrumented().0
}

/// Draws input vectors (approximately uniformly) from the SPCFs of a
/// synthesis result — patterns guaranteed to sensitize speed-paths.
///
/// Useful for building stress workloads: on deep circuits the SPCF is a
/// thin slice of the input space, so uniform random workloads rarely
/// exercise the speed-paths; realistic wearout and debug experiments mix
/// these patterns in. Outputs cycle round-robin over the critical
/// outputs; deterministic in `seed`.
pub fn speedpath_patterns(
    result: &crate::synth::MaskingResult,
    count: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    use tm_testkit::rng::Rng;
    let mut rng = Rng::seed_from_u64(seed);
    let zero = result.bdd.zero();
    let spcfs: Vec<_> = result
        .spcf
        .outputs
        .iter()
        .filter(|o| o.spcf != zero)
        .map(|o| o.spcf)
        .collect();
    if spcfs.is_empty() {
        return Vec::new();
    }
    (0..count)
        .filter_map(|k| {
            let f = spcfs[k % spcfs.len()];
            result.bdd.sample_sat(f, || rng.next_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MaskingOptions;
    use crate::synth::synthesize;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;
    use tm_sta::Sta;

    #[test]
    fn aged_comparator_errors_are_fully_masked() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay(); // 7 units
        // 8% aging: the 7-unit speed-paths slip past the clock (7.56),
        // everything at ≤ 6.3 stays inside (6.8).
        let scale = uniform_aging(&r.design, 1.08).expect("valid factor");
        let vectors = random_vectors(4, 400, 11);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors).expect("valid run");
        assert!(outcome.raw_errors > 0, "aging should produce raw errors");
        assert_eq!(outcome.masked_errors, 0, "{outcome:?}");
        assert!(outcome.activations >= outcome.raw_errors);
        assert_eq!(outcome.masking_effectiveness(), 1.0);
    }

    #[test]
    fn fresh_silicon_has_no_errors_anywhere() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = uniform_aging(&r.design, 1.0).expect("valid factor");
        let vectors = random_vectors(4, 200, 3);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors).expect("valid run");
        assert_eq!(outcome.raw_errors, 0);
        assert_eq!(outcome.masked_errors, 0);
    }

    #[test]
    fn original_only_aging_also_masked() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = original_only_aging(&r.design, 1.09).expect("valid factor");
        let vectors = random_vectors(4, 400, 23);
        let outcome = inject_and_measure(&r.design, &scale, clock, &vectors).expect("valid run");
        assert!(outcome.raw_errors > 0);
        assert_eq!(outcome.masked_errors, 0, "{outcome:?}");
    }

    #[test]
    fn non_finite_and_non_positive_factors_rejected() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            assert!(uniform_aging(&r.design, bad).is_err(), "factor {bad} accepted");
            assert!(original_only_aging(&r.design, bad).is_err(), "factor {bad} accepted");
        }
        // A poisoned entry inside an otherwise fine scale vector is
        // caught too, not just the convenience constructors.
        let mut scale = uniform_aging(&r.design, 1.0).unwrap();
        scale[0] = f64::NAN;
        let clock = Sta::new(&nl).critical_path_delay();
        let err = inject_and_measure(&r.design, &scale, clock, &[]).expect_err("NaN scale");
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn zero_cycle_run_reports_cleanly() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = uniform_aging(&r.design, 1.08).unwrap();
        // Zero and one vector both mean zero transitions.
        for vectors in [Vec::new(), vec![vec![false; 4]]] {
            let outcome = inject_and_measure(&r.design, &scale, clock, &vectors).unwrap();
            assert_eq!(outcome, InjectionOutcome::default());
            assert_eq!(outcome.cycles, 0);
            assert_eq!(outcome.masking_effectiveness(), 1.0);
        }
    }

    #[test]
    fn mismatched_arity_is_an_error_not_a_panic() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let r = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let scale = uniform_aging(&r.design, 1.0).unwrap();
        // Short scale vector.
        let err = inject_and_measure(&r.design, &scale[..1], clock, &[]).expect_err("short scale");
        assert!(err.to_string().contains("scale factor"));
        // Wrong vector arity.
        let vectors = vec![vec![false; 3], vec![true; 3]];
        let err = inject_and_measure(&r.design, &scale, clock, &vectors).expect_err("bad arity");
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn effectiveness_clamps_to_unit_interval() {
        let more_masked = InjectionOutcome { cycles: 10, raw_errors: 1, masked_errors: 3, activations: 3 };
        assert_eq!(more_masked.masking_effectiveness(), 0.0);
        let clean = InjectionOutcome::default();
        assert_eq!(clean.masking_effectiveness(), 1.0);
    }
}
