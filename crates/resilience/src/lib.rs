//! Deterministic computation budgets and typed errors for the
//! SPCF → masking pipeline.
//!
//! The exact SPCF engines are BDD-based and can blow up exponentially on
//! unlucky netlists. Rather than OOM-ing (or relying on wall-clock
//! timeouts, which make runs irreproducible), every expensive engine
//! accepts a [`Budget`] of *deterministic* counters — BDD nodes
//! allocated, recursion steps taken, memo entries stored. When a counter
//! crosses its limit the engine unwinds with a typed [`Exhausted`] error
//! and the caller degrades to a cheaper, sound over-approximation (see
//! `tm_masking::synthesize` and DESIGN.md §7).
//!
//! The crate also defines [`TmError`], the workspace-wide error type
//! with a human-readable context chain, so every public entry point can
//! be panic-free on untrusted input.

#![forbid(unsafe_code)]

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which budgeted resource ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Unique-table nodes allocated by a [`tm_logic`-style] BDD manager.
    BddNodes,
    /// Recursive apply/quantify steps (ITE cache misses and the like).
    Steps,
    /// Entries stored in an engine memo table (stabilization memo,
    /// waveform store, ...).
    MemoEntries,
}

impl Resource {
    /// Short stable name used in error messages and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Resource::BddNodes => "bdd_nodes",
            Resource::Steps => "steps",
            Resource::MemoEntries => "memo_entries",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A computation budget ran out.
///
/// Carries enough to explain *what* was exceeded and by how much; the
/// construction site records `resilience.budget.exhausted` in telemetry
/// so exhaustion is visible even when a caller recovers silently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// The counter that crossed its limit.
    pub resource: Resource,
    /// The configured limit.
    pub limit: u64,
    /// The observed value that tripped the check (≥ `limit`).
    pub used: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "computation budget exhausted: {} used {} of limit {}",
            self.resource, self.used, self.limit
        )
    }
}

impl Error for Exhausted {}

/// Deterministic limits on a computation. `u64::MAX` means unlimited.
///
/// A `Budget` is a plain `Copy` bundle of limits — the *counters* live
/// in the engines themselves (BDD manager node count, memo sizes), so
/// there is no shared mutable state and runs stay reproducible across
/// machines: the same input and budget always exhaust at the same point
/// or not at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Max unique-table nodes a BDD manager may hold.
    pub max_bdd_nodes: u64,
    /// Max recursion steps (ITE-cache misses / quantifier expansions).
    pub max_steps: u64,
    /// Max entries an engine memo table may hold.
    pub max_memo_entries: u64,
}

impl Budget {
    /// No limits; checks never fail. This is the default.
    pub const fn unlimited() -> Self {
        Budget { max_bdd_nodes: u64::MAX, max_steps: u64::MAX, max_memo_entries: u64::MAX }
    }

    /// True when no limit is set (all checks are trivially satisfied).
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::unlimited()
    }

    /// Caps unique-table BDD nodes.
    pub fn with_max_bdd_nodes(mut self, n: u64) -> Self {
        self.max_bdd_nodes = n;
        self
    }

    /// Caps recursion steps.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Caps engine memo entries.
    pub fn with_max_memo_entries(mut self, n: u64) -> Self {
        self.max_memo_entries = n;
        self
    }

    fn check(resource: Resource, used: u64, limit: u64) -> Result<(), Exhausted> {
        if used < limit {
            return Ok(());
        }
        tm_telemetry::counter_add("resilience.budget.exhausted", 1);
        // Flight event so a trace shows *which request* exhausted its
        // budget (the active trace id is attached automatically).
        tm_telemetry::flight::instant(
            "resilience.exhausted",
            &[("resource", resource as u8 as f64), ("limit", limit as f64), ("used", used as f64)],
        );
        Err(Exhausted { resource, limit, used })
    }

    /// Fails once `used` BDD nodes reaches the node limit.
    pub fn check_bdd_nodes(&self, used: u64) -> Result<(), Exhausted> {
        Budget::check(Resource::BddNodes, used, self.max_bdd_nodes)
    }

    /// Fails once `used` steps reaches the step limit.
    pub fn check_steps(&self, used: u64) -> Result<(), Exhausted> {
        Budget::check(Resource::Steps, used, self.max_steps)
    }

    /// Fails once `used` memo entries reaches the memo limit.
    pub fn check_memo_entries(&self, used: u64) -> Result<(), Exhausted> {
        Budget::check(Resource::MemoEntries, used, self.max_memo_entries)
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// A [`Budget`] whose counters are shared across worker threads.
///
/// The parallel SPCF driver shards critical outputs over `N` workers,
/// each computing in its own BDD manager. A per-worker `Budget` would
/// multiply the caller's limits by `N`; a `SharedBudget` instead keeps
/// one set of atomic *used* counters that every worker charges its
/// deltas into, so the run as a whole respects the limits the caller
/// configured. Workers charge at output granularity: compute one
/// output under a local [`Budget`] carved from [`SharedBudget::remaining`],
/// then [`charge`](SharedBudget::charge) the consumed amounts back.
///
/// The struct is plain data (no `Arc` inside): share it by reference
/// through `std::thread::scope`.
#[derive(Debug)]
pub struct SharedBudget {
    limits: Budget,
    used_bdd_nodes: AtomicU64,
    used_steps: AtomicU64,
    used_memo_entries: AtomicU64,
    tripped: AtomicBool,
}

impl SharedBudget {
    /// A shared view with nothing consumed yet.
    pub fn new(limits: Budget) -> Self {
        SharedBudget {
            limits,
            used_bdd_nodes: AtomicU64::new(0),
            used_steps: AtomicU64::new(0),
            used_memo_entries: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> Budget {
        self.limits
    }

    /// True once any charge crossed a limit. Workers poll this between
    /// outputs so one exhaustion stops the whole run promptly.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Marks the shared view tripped *without* recording a telemetry
    /// count. A worker whose *local* [`Budget`] check already counted
    /// the exhaustion calls this before its final
    /// [`charge`](Self::charge), so the same trip is not counted a
    /// second time at the shared layer.
    pub fn mark_tripped(&self) {
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Adds a worker's consumption to the shared counters, failing if
    /// any total crossed its limit.
    ///
    /// Only the charge that first crosses a limit records the
    /// `resilience.budget.exhausted` telemetry count at this layer
    /// (per-worker [`Budget`] checks already count their own trips), so
    /// a shared trip is not multiply counted by racing workers.
    pub fn charge(
        &self,
        bdd_nodes: u64,
        steps: u64,
        memo_entries: u64,
    ) -> Result<(), Exhausted> {
        let totals = [
            (Resource::BddNodes, &self.used_bdd_nodes, bdd_nodes, self.limits.max_bdd_nodes),
            (Resource::Steps, &self.used_steps, steps, self.limits.max_steps),
            (
                Resource::MemoEntries,
                &self.used_memo_entries,
                memo_entries,
                self.limits.max_memo_entries,
            ),
        ];
        for (resource, counter, delta, limit) in totals {
            let used = counter.fetch_add(delta, Ordering::Relaxed).saturating_add(delta);
            if used >= limit && limit != u64::MAX {
                if !self.tripped.swap(true, Ordering::Relaxed) {
                    tm_telemetry::counter_add("resilience.budget.exhausted", 1);
                    tm_telemetry::flight::instant(
                        "resilience.exhausted",
                        &[
                            ("resource", resource as u8 as f64),
                            ("limit", limit as f64),
                            ("used", used as f64),
                        ],
                    );
                }
                return Err(Exhausted { resource, limit, used });
            }
        }
        Ok(())
    }

    /// The budget still available: the configured limits minus what has
    /// been charged so far (unlimited axes stay unlimited). Workers
    /// install this as the local [`Budget`] for their next output so no
    /// single output can overrun what the whole run has left.
    pub fn remaining(&self) -> Budget {
        let left = |limit: u64, used: &AtomicU64| {
            if limit == u64::MAX {
                u64::MAX
            } else {
                limit.saturating_sub(used.load(Ordering::Relaxed))
            }
        };
        Budget {
            max_bdd_nodes: left(self.limits.max_bdd_nodes, &self.used_bdd_nodes),
            max_steps: left(self.limits.max_steps, &self.used_steps),
            max_memo_entries: left(self.limits.max_memo_entries, &self.used_memo_entries),
        }
    }

    /// The local [`Budget`] a worker should install given what *it* has
    /// already charged.
    ///
    /// A worker's own counters (manager node count, memo size) are
    /// lifetime totals, so a budget of plain [`remaining`](Self::remaining)
    /// would count the worker's own past consumption twice. This view
    /// adds the worker's own charges back: the worker may locally reach
    /// `limit − everyone else's usage`.
    pub fn local_view(
        &self,
        own_bdd_nodes: u64,
        own_steps: u64,
        own_memo_entries: u64,
    ) -> Budget {
        let rem = self.remaining();
        let add = |r: u64, own: u64| if r == u64::MAX { u64::MAX } else { r.saturating_add(own) };
        Budget {
            max_bdd_nodes: add(rem.max_bdd_nodes, own_bdd_nodes),
            max_steps: add(rem.max_steps, own_steps),
            max_memo_entries: add(rem.max_memo_entries, own_memo_entries),
        }
    }
}

/// What went wrong, structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TmErrorKind {
    /// A deterministic computation budget ran out (see [`Exhausted`]).
    Exhausted(Exhausted),
    /// Input text failed to parse; `line` is 1-based (0 = no location).
    Parse { line: usize, message: String },
    /// A value or argument violated a documented precondition.
    InvalidInput(String),
    /// The request is well-formed but outside what the engine supports.
    Unsupported(String),
}

/// Workspace-wide error: a [`TmErrorKind`] plus a context chain.
///
/// Context frames are pushed outermost-last with [`TmError::context`],
/// so `Display` reads like a story: `"synthesizing mask for c17:
/// parsing BLIF: line 12: .names block has no output"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TmError {
    kind: TmErrorKind,
    context: Vec<String>,
}

impl TmError {
    /// An error from a structural kind.
    pub fn new(kind: TmErrorKind) -> Self {
        TmError { kind, context: Vec::new() }
    }

    /// Convenience: an [`TmErrorKind::InvalidInput`] error.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        TmError::new(TmErrorKind::InvalidInput(message.into()))
    }

    /// Convenience: an [`TmErrorKind::Unsupported`] error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        TmError::new(TmErrorKind::Unsupported(message.into()))
    }

    /// Convenience: a [`TmErrorKind::Parse`] error at a 1-based line.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        TmError::new(TmErrorKind::Parse { line, message: message.into() })
    }

    /// Pushes an outer context frame (builder-style).
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }

    /// The structural kind.
    pub fn kind(&self) -> &TmErrorKind {
        &self.kind
    }

    /// Context frames, outermost first.
    pub fn frames(&self) -> impl Iterator<Item = &str> {
        self.context.iter().rev().map(String::as_str)
    }
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for frame in self.frames() {
            write!(f, "{frame}: ")?;
        }
        match &self.kind {
            TmErrorKind::Exhausted(e) => write!(f, "{e}"),
            TmErrorKind::Parse { line: 0, message } => write!(f, "{message}"),
            TmErrorKind::Parse { line, message } => write!(f, "line {line}: {message}"),
            TmErrorKind::InvalidInput(m) => write!(f, "invalid input: {m}"),
            TmErrorKind::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl Error for TmError {}

impl From<Exhausted> for TmError {
    fn from(e: Exhausted) -> Self {
        TmError::new(TmErrorKind::Exhausted(e))
    }
}

/// Workspace-wide result alias.
pub type TmResult<T> = Result<T, TmError>;

/// Adds `.context(...)` sugar on `Result<T, E>` for any `E: Into<TmError>`.
pub trait Context<T> {
    /// Wraps the error (if any) into [`TmError`] with an outer frame.
    fn context(self, frame: impl Into<String>) -> TmResult<T>;
}

impl<T, E: Into<TmError>> Context<T> for Result<T, E> {
    fn context(self, frame: impl Into<String>) -> TmResult<T> {
        self.map_err(|e| e.into().context(frame))
    }
}

/// A counting admission gate: at most `capacity` permits outstanding at
/// once, handed out without blocking.
///
/// This is the load-shedding primitive of the serving layer: an
/// acceptor calls [`Gate::try_enter`] per connection and turns `None`
/// into a typed "overloaded" rejection instead of queueing unboundedly.
/// The returned [`Permit`] releases its slot on `Drop`, so a panic or
/// early return in the admitted work can never leak capacity. The
/// current load ([`Gate::in_flight`]) also drives the degradation
/// ladder: rising occupancy steps requests down to cheaper SPCF
/// engines before the gate starts rejecting outright.
#[derive(Debug)]
pub struct Gate {
    capacity: usize,
    in_flight: std::sync::atomic::AtomicUsize,
}

impl Gate {
    /// A gate admitting at most `capacity` concurrent holders
    /// (`capacity = 0` rejects everything).
    pub fn new(capacity: usize) -> Self {
        Gate { capacity, in_flight: std::sync::atomic::AtomicUsize::new(0) }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Tries to take a permit; `None` means the gate is full and the
    /// caller should shed the work. Never blocks.
    pub fn try_enter(self: &std::sync::Arc<Self>) -> Option<Permit> {
        use std::sync::atomic::Ordering;
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.capacity {
                return None;
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { gate: std::sync::Arc::clone(self) }),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// An admission slot held while a request is in flight; dropping it
/// releases the slot (see [`Gate`]).
#[derive(Debug)]
pub struct Permit {
    gate: std::sync::Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check_bdd_nodes(u64::MAX - 1).is_ok());
        assert!(b.check_steps(u64::MAX - 1).is_ok());
        assert!(b.check_memo_entries(u64::MAX - 1).is_ok());
    }

    #[test]
    fn limits_trip_at_the_boundary() {
        let b = Budget::unlimited().with_max_steps(10);
        assert!(!b.is_unlimited());
        assert!(b.check_steps(9).is_ok());
        let e = b.check_steps(10).unwrap_err();
        assert_eq!(e, Exhausted { resource: Resource::Steps, limit: 10, used: 10 });
        assert_eq!(e.to_string(), "computation budget exhausted: steps used 10 of limit 10");
    }

    #[test]
    fn exhaustion_is_counted_in_telemetry() {
        let _scope = tm_telemetry::Scope::enter();
        let b = Budget::unlimited().with_max_bdd_nodes(1);
        let _ = b.check_bdd_nodes(5);
        let _ = b.check_bdd_nodes(6);
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("resilience.budget.exhausted"), Some(2));
    }

    #[test]
    fn error_context_chain_reads_outermost_first() {
        let e: TmError = Exhausted { resource: Resource::BddNodes, limit: 4, used: 4 }.into();
        let e = e.context("computing SPCF").context("synthesizing mask for c17");
        assert_eq!(
            e.to_string(),
            "synthesizing mask for c17: computing SPCF: \
             computation budget exhausted: bdd_nodes used 4 of limit 4"
        );
        assert_eq!(
            e.frames().collect::<Vec<_>>(),
            vec!["synthesizing mask for c17", "computing SPCF"]
        );
        assert!(matches!(e.kind(), TmErrorKind::Exhausted(_)));
    }

    #[test]
    fn parse_errors_render_line_numbers() {
        assert_eq!(TmError::parse(12, "bad token").to_string(), "line 12: bad token");
        assert_eq!(TmError::parse(0, "truncated file").to_string(), "truncated file");
        assert_eq!(
            TmError::invalid_input("aging factor must be finite").to_string(),
            "invalid input: aging factor must be finite"
        );
        assert_eq!(TmError::unsupported("latches").to_string(), "unsupported: latches");
    }

    #[test]
    fn shared_budget_accumulates_across_charges() {
        let s = SharedBudget::new(Budget::unlimited().with_max_bdd_nodes(10));
        assert!(s.charge(4, 100, 100).is_ok(), "only the node axis is limited");
        assert!(!s.is_tripped());
        assert_eq!(s.remaining().max_bdd_nodes, 6);
        let e = s.charge(6, 0, 0).unwrap_err();
        assert_eq!(e.resource, Resource::BddNodes);
        assert_eq!(e.limit, 10);
        assert!(s.is_tripped());
        // Unlimited axes stay unlimited in the remaining view.
        assert_eq!(s.remaining().max_steps, u64::MAX);
    }

    #[test]
    fn shared_budget_trip_is_counted_once() {
        let _scope = tm_telemetry::Scope::enter();
        let s = SharedBudget::new(Budget::unlimited().with_max_memo_entries(2));
        assert!(s.charge(0, 0, 1).is_ok());
        assert!(s.charge(0, 0, 5).is_err());
        assert!(s.charge(0, 0, 1).is_err(), "stays tripped");
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("resilience.budget.exhausted"), Some(1));
    }

    #[test]
    fn mark_tripped_is_silent() {
        let _scope = tm_telemetry::Scope::enter();
        let s = SharedBudget::new(Budget::unlimited().with_max_steps(10));
        s.mark_tripped();
        assert!(s.is_tripped());
        // A crossing charge after the silent mark still errors but no
        // longer counts: the local check that caused the mark already
        // recorded the exhaustion.
        assert!(s.charge(0, 20, 0).is_err());
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("resilience.budget.exhausted"), None);
    }

    #[test]
    fn shared_budget_parallel_charges_respect_the_limit() {
        let s = SharedBudget::new(Budget::unlimited().with_max_steps(1000));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| while s.charge(0, 7, 0).is_ok() {});
            }
        });
        assert!(s.is_tripped());
        assert_eq!(s.remaining().max_steps, 0, "nothing left once tripped");
    }

    #[test]
    fn local_view_adds_own_consumption_back() {
        let s = SharedBudget::new(Budget::unlimited().with_max_memo_entries(10));
        s.charge(0, 0, 6).expect("within limit"); // this worker's own usage
        s.charge(0, 0, 2).expect("within limit"); // another worker
        // remaining is 2, but this worker's memo already holds 6
        // entries, so its local limit must be 10 − 2 = 8.
        assert_eq!(s.remaining().max_memo_entries, 2);
        let local = s.local_view(0, 0, 6);
        assert_eq!(local.max_memo_entries, 8);
        assert_eq!(local.max_bdd_nodes, u64::MAX);
    }

    #[test]
    fn result_context_sugar() {
        fn inner() -> Result<(), Exhausted> {
            Err(Exhausted { resource: Resource::MemoEntries, limit: 2, used: 2 })
        }
        let r: TmResult<()> = inner().context("building waveforms");
        let msg = r.unwrap_err().to_string();
        assert!(msg.starts_with("building waveforms: "), "{msg}");
    }

    #[test]
    fn gate_caps_permits_and_drop_releases() {
        let gate = std::sync::Arc::new(Gate::new(2));
        let a = gate.try_enter().expect("slot 1");
        let b = gate.try_enter().expect("slot 2");
        assert!(gate.try_enter().is_none(), "full gate sheds");
        assert_eq!(gate.in_flight(), 2);
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let c = gate.try_enter().expect("released slot is reusable");
        drop((b, c));
        assert_eq!(gate.in_flight(), 0);
        assert!(std::sync::Arc::new(Gate::new(0)).try_enter().is_none(), "zero capacity");
    }

    #[test]
    fn gate_never_overadmits_under_contention() {
        let gate = std::sync::Arc::new(Gate::new(3));
        let peak = std::sync::atomic::AtomicUsize::new(0);
        let admitted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        if let Some(permit) = gate.try_enter() {
                            admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            peak.fetch_max(
                                gate.in_flight(),
                                std::sync::atomic::Ordering::Relaxed,
                            );
                            drop(permit);
                        }
                    }
                });
            }
        });
        assert!(peak.load(std::sync::atomic::Ordering::Relaxed) <= 3, "capacity respected");
        assert!(admitted.load(std::sync::atomic::Ordering::Relaxed) > 0, "some work admitted");
        assert_eq!(gate.in_flight(), 0, "all permits returned");
    }
}
