//! Quickstart: protect a circuit's speed-paths and watch masking work.
//!
//! Builds a small ALU, synthesizes the error-masking circuit for its
//! speed-paths (within 10 % of the critical path delay), verifies 100 %
//! masking exactly, then ages the silicon and shows raw timing errors
//! appearing while the masked outputs stay clean.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use timemask::masking::{
    inject_and_measure, synthesize, uniform_aging, verify, MaskingOptions,
};
use timemask::netlist::{circuits::mini_alu, library::lsi10k_like};
use timemask::sim::patterns::random_vectors;
use timemask::sta::Sta;

fn main() {
    // 1. A circuit to protect: a 4-bit ALU on the lsi10k-like library.
    let library = Arc::new(lsi10k_like());
    let circuit = mini_alu(library, 4);
    let sta = Sta::new(&circuit);
    let delta = sta.critical_path_delay();
    println!("circuit: {} ({} gates)", circuit.name(), circuit.num_gates());
    println!("critical path delay Δ = {delta}");

    // 2. Synthesize the error-masking circuit (paper §4).
    let mut result = synthesize(&circuit, MaskingOptions::default());
    let r = &result.report;
    println!("\nerror-masking synthesis:");
    println!("  critical outputs : {} of {}", r.critical_outputs, r.num_outputs);
    println!("  critical patterns: {:.3e}", r.critical_patterns);
    println!("  masking slack    : {:.1}% (required ≥ 20%)", r.slack_percent);
    println!("  area overhead    : {:.1}%", r.area_overhead_percent);
    println!("  power overhead   : {:.1}%", r.power_overhead_percent);

    // 3. Exact verification: Σ_y ⇒ e, e ⇒ (ỹ ≡ y), transparency.
    let verdict = verify(&mut result);
    println!("\nexact verification:");
    println!("  functionally transparent: {}", verdict.functionally_transparent);
    println!("  masking coverage        : {:.1}%", verdict.coverage() * 100.0);
    assert!(verdict.all_ok(), "verification must pass");

    // 4. Dynamic demonstration: age the gates 8% and clock at Δ. The
    // speed-paths now miss the clock; the masking circuit hides it.
    let clock = delta;
    let aged = uniform_aging(&result.design, 1.08).expect("valid factor");
    let workload = random_vectors(circuit.inputs().len(), 2000, 42);
    let outcome =
        inject_and_measure(&result.design, &aged, clock, &workload).expect("valid run");
    println!("\naged silicon (8% slower), {} cycles at clock Δ:", outcome.cycles);
    println!("  raw timing errors   : {}", outcome.raw_errors);
    println!("  masked output errors: {}", outcome.masked_errors);
    println!("  speed-path cycles   : {}", outcome.activations);
    println!(
        "  masking effectiveness: {:.1}%",
        outcome.masking_effectiveness() * 100.0
    );
    assert_eq!(outcome.masked_errors, 0, "all timing errors must be masked");
    println!("\nall timing errors on speed-paths were masked ✓");
}
