//! The paper's worked example (§4.2 and Fig. 2): a 2-bit comparator.
//!
//! Reproduces every quantity of the paper's walkthrough: the critical
//! path delay Δ = 7, the target Δ_y = 6.3, the SPCF
//! `Σ_y = ā1 + ā0·b1`, the selected covers, the prediction
//! `ỹ = (a0 + b̄0)(a1 + b̄1)` and the simplified indicator, and finally
//! the MUX-based masking of Fig. 2(b).
//!
//! Run with: `cargo run --release --example comparator`

use std::sync::Arc;
use timemask::logic::Bdd;
use timemask::masking::{synthesize, verify, MaskingOptions};
use timemask::netlist::{circuits::comparator2, library::lsi10k_like};
use timemask::spcf::short_path_spcf;
use timemask::sta::Sta;

fn main() {
    let circuit = comparator2(Arc::new(lsi10k_like()));
    println!("Fig. 2(a): 2-bit comparator, y = (a1a0 >= b1b0)");
    println!("gates: {}, inputs: a0 a1 b0 b1", circuit.num_gates());

    // Timing: inverter = 1 unit, 2-input gates = 2 units → Δ = 7.
    let sta = Sta::new(&circuit);
    let delta = sta.critical_path_delay();
    let target = delta * 0.9;
    println!("\ncritical path delay Δ   = {delta} (paper: 7)");
    println!("target arrival time Δ_y = {target} (paper: 6.3)");

    // The two speed-paths highlighted in Fig. 2(a).
    let paths = sta.enumerate_paths(circuit.outputs()[0], target, 16);
    println!("\nspeed-paths within 10% of Δ:");
    for p in &paths.paths {
        let names: Vec<&str> = p.nets.iter().map(|&n| circuit.net_name(n)).collect();
        println!("  {} (delay {})", names.join(" → "), p.delay);
    }

    // The SPCF: Σ_y(Δ_y) = ā1 + ā0·b1 — 10 of the 16 input patterns.
    let mut bdd = Bdd::new(4);
    let spcf = short_path_spcf(&circuit, &sta, &mut bdd, target);
    let sigma = spcf.outputs[0].spcf;
    println!("\nSPCF patterns (paper: Σ_y = ā1 + ā0·b1):");
    let mut count = 0;
    for m in 0..16u64 {
        let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
        if bdd.eval(sigma, &a) {
            count += 1;
            println!(
                "  a1a0={}{} b1b0={}{}",
                a[1] as u8, a[0] as u8, a[3] as u8, a[2] as u8
            );
        }
    }
    println!("  total: {count} of 16 (paper: ā1 + ā0·b1 = 10 patterns)");
    assert_eq!(count, 10);

    // Synthesize the masking circuit of Fig. 2(b).
    let mut result = synthesize(&circuit, MaskingOptions::default());
    println!("\nerror-masking circuit (Fig. 2b):");
    println!("  masking gates : {}", result.design.masking.num_gates());
    println!("  slack         : {:.1}%", result.report.slack_percent);
    println!("  area overhead : {:.1}%", result.report.area_overhead_percent);

    // Show ỹ and e as truth tables; the paper derives
    // ỹ = (a0 + b̄0)(a1 + b̄1) and e = ā1 + b1.
    let p = &result.design.protected[0];
    println!("\n  pattern  y  ỹ  e   (ỹ must equal y wherever e = 1)");
    for m in 0..16u64 {
        let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
        let y = circuit.eval(&a)[0];
        let vals = result.design.masking.eval_all_nets(&a);
        let yt = vals[p.ytilde.index()];
        let e = vals[p.e.index()];
        println!(
            "  a={}{} b={}{}  {}  {}  {}",
            a[1] as u8, a[0] as u8, a[3] as u8, a[2] as u8, y as u8, yt as u8, e as u8
        );
        if e {
            assert_eq!(y, yt);
        }
    }

    let verdict = verify(&mut result);
    assert!(verdict.all_ok());
    println!("\n100% masking coverage verified exactly ✓");
}
