//! Wearout prediction from masked-error logs (paper §2.1).
//!
//! Simulates a masked design across its lifetime: gate delays degrade
//! epoch by epoch (speed-path gates fastest, as under NBTI/HCI), a
//! workload runs at the original clock, and the hardware-observable
//! signal `e ∧ (y ⊕ ỹ)` is logged. The offline predictor detects the
//! onset of wearout from the rising masked-error rate — while the
//! masked outputs themselves never show an error.
//!
//! Run with: `cargo run --release --example wearout`

use std::sync::Arc;
use timemask::masking::{inject::speedpath_patterns, synthesize, MaskingOptions};
use timemask::monitor::wearout::{run_lifetime, LifetimeConfig, WearoutPredictor};
use timemask::netlist::{generate::GeneratorSpec, library::lsi10k_like};

fn main() {
    // A control-logic-style circuit with engineered speed-paths.
    let library = Arc::new(lsi10k_like());
    let spec = GeneratorSpec::sized("ctrl_unit", 32, 12, 180);
    let circuit = timemask::netlist::generate::generate(&spec, library);
    println!(
        "circuit: {} ({} gates, {} outputs)",
        circuit.name(),
        circuit.num_gates(),
        circuit.outputs().len()
    );

    let result = synthesize(&circuit, MaskingOptions::default());
    println!(
        "masking: {} critical outputs protected, slack {:.1}%",
        result.report.critical_outputs, result.report.slack_percent
    );

    // Lifetime sweep: stress 0 → 0.9 (speed-path slowdown up to ~10.8%,
    // inside the band the 10%-of-Δ protection covers). The workload
    // mixes in speed-path-sensitizing patterns sampled from the SPCF —
    // a uniform random workload would rarely touch the thin SPCF slice.
    let stress_pool = speedpath_patterns(&result, 64, 5);
    let config = LifetimeConfig {
        epochs: 10,
        max_stress: 0.9,
        vectors_per_epoch: 1500,
        stress_pool,
        pool_bias: 0.3,
        ..Default::default()
    };
    let stats = run_lifetime(&result.design, &config).expect("valid lifetime config");

    println!("\nepoch  stress  speed-path  masked   escaped  error");
    println!("               activations  errors   errors   rate");
    for s in &stats {
        println!(
            "{:>5}  {:>6.2}  {:>10}  {:>7}  {:>7}  {:>7.4}",
            s.epoch,
            s.stress,
            s.activations,
            s.detected_errors,
            s.escapes,
            s.error_rate()
        );
        assert_eq!(s.escapes, 0, "masking must hide every timing error");
    }

    let assessment = WearoutPredictor::default().assess(&stats);
    println!("\noffline analysis:");
    match assessment.onset_epoch {
        Some(e) => println!("  wearout onset detected at epoch {e}"),
        None => println!("  no wearout onset detected"),
    }
    println!("  error-rate slope: {:+.5}/epoch", assessment.rate_slope);
    if let Some(f) = assessment.predicted_failure_epoch {
        println!("  extrapolated end-of-life epoch: {f}");
    }
    println!("\nno error ever escaped the masking circuit ✓");
}
