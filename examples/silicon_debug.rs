//! In-system silicon debug with selective trace capture (paper §2.1).
//!
//! Trace buffers can only store a limited number of cycles per debug
//! session. Gating capture on the masking circuit's indicator outputs —
//! storing snapshots only on cycles where a speed-path is actually
//! exercised — expands the observation window by the inverse of the
//! speed-path activity rate, making rare timing-marginal events far
//! easier to catch.
//!
//! Run with: `cargo run --release --example silicon_debug`

use std::sync::Arc;
use timemask::masking::{synthesize, uniform_aging, MaskingOptions};
use timemask::monitor::trace::{CapturePolicy, DebugSession};
use timemask::netlist::{generate::GeneratorSpec, library::lsi10k_like};
use timemask::sim::patterns::random_vectors;

fn main() {
    let library = Arc::new(lsi10k_like());
    let spec = GeneratorSpec::sized("dbg_block", 40, 16, 260);
    let circuit = timemask::netlist::generate::generate(&spec, library);
    let result = synthesize(&circuit, MaskingOptions::default());
    println!(
        "circuit: {} ({} gates), {} critical outputs protected",
        circuit.name(),
        circuit.num_gates(),
        result.report.critical_outputs
    );

    let session = DebugSession::new(&result.design);
    let scale = uniform_aging(&result.design, 1.0).expect("valid factor");
    let workload = random_vectors(circuit.inputs().len(), 6000, 77);

    println!("\nbuffer   always-capture   selective-capture   window");
    println!("capacity window           window              expansion");
    for capacity in [16usize, 64, 256] {
        let always = session
            .run(&scale, &workload, capacity, CapturePolicy::Always)
            .expect("valid session");
        let selective = session
            .run(&scale, &workload, capacity, CapturePolicy::OnSpeedPath)
            .expect("valid session");
        let expansion = selective.window as f64 / always.window.max(1) as f64;
        println!(
            "{:>8} {:>16} {:>19} {:>8.1}x",
            capacity, always.window, selective.window, expansion
        );
        // Every selectively captured entry is a vulnerable cycle.
        for entry in selective.buffer.entries() {
            let any_e = entry.signals.iter().skip(2).step_by(3).any(|&e| e);
            assert!(any_e);
        }
    }

    println!("\nselective capture stores only cycles where e fired,");
    println!("so one buffer-full of entries covers a much longer run ✓");
}
