//! End-to-end integration tests: the full claim of the paper exercised
//! on real (reference) circuits and suite stand-ins — synthesis, exact
//! verification, and dynamic error injection under aging.

use std::sync::Arc;
use timemask::masking::{
    duplication_masking, inject_and_measure, speedpath_patterns, synthesize, uniform_aging,
    verify, MaskingOptions,
};
use timemask::monitor::trace::{CapturePolicy, DebugSession};
use timemask::monitor::wearout::{run_lifetime, LifetimeConfig, WearoutPredictor};
use timemask::netlist::library::lsi10k_like;
use timemask::netlist::suites::smoke_suite;
use timemask::netlist::{circuits, Netlist};
use timemask::sim::patterns::random_vectors;
use timemask::sta::Sta;

fn library() -> Arc<timemask::netlist::Library> {
    Arc::new(lsi10k_like())
}

fn check_full_pipeline(nl: &Netlist) {
    let mut result = synthesize(nl, MaskingOptions::default());
    let verdict = verify(&mut result);
    assert!(verdict.all_ok(), "{}: verification failed", nl.name());
    assert_eq!(verdict.coverage(), 1.0, "{}", nl.name());
    if !result.design.is_protected() {
        return;
    }
    assert!(result.report.slack_met, "{}: slack {:.1}%", nl.name(), result.report.slack_percent);

    // Dynamic check: 8% aging at the nominal clock. Uniform workload
    // plus SPCF-drawn stress patterns so speed-paths actually fire.
    let clock = Sta::new(nl).critical_path_delay();
    let scale = uniform_aging(&result.design, 1.08).expect("valid factor");
    let mut vectors = random_vectors(nl.inputs().len(), 300, 0xE2E);
    let stress = speedpath_patterns(&result, 100, 0x57E);
    for (k, s) in stress.into_iter().enumerate() {
        vectors.insert((k * 3 + 1) % vectors.len(), s);
    }
    let outcome =
        inject_and_measure(&result.design, &scale, clock, &vectors).expect("valid run");
    assert!(outcome.raw_errors > 0, "{}: stress workload produced no raw errors", nl.name());
    assert_eq!(outcome.masked_errors, 0, "{}: {:?}", nl.name(), outcome);
}

#[test]
fn reference_circuits_full_pipeline() {
    let lib = library();
    for nl in [
        circuits::comparator2(lib.clone()),
        circuits::priority_encoder(lib.clone(), 8),
        circuits::mini_alu(lib.clone(), 3),
    ] {
        check_full_pipeline(&nl);
    }
}

#[test]
fn suite_standins_full_pipeline() {
    let lib = library();
    for entry in smoke_suite() {
        let nl = entry.build(lib.clone());
        check_full_pipeline(&nl);
    }
}

#[test]
fn duplication_baseline_loses_where_proposed_wins() {
    let lib = library();
    let nl = smoke_suite()[0].build(lib);
    let mut dup = duplication_masking(&nl, MaskingOptions::default());
    assert!(verify(&mut dup).all_ok(), "duplication is functionally sound");
    assert!(!dup.report.slack_met, "a copy cannot be faster than the original");

    let proposed = synthesize(&nl, MaskingOptions::default());
    assert!(proposed.report.slack_met);
    assert!(proposed.report.slack_percent > dup.report.slack_percent);
}

#[test]
fn wearout_monitoring_detects_aging_without_escapes() {
    let lib = library();
    let nl = smoke_suite()[0].build(lib);
    let result = synthesize(&nl, MaskingOptions::default());
    let stress_pool = speedpath_patterns(&result, 48, 9);
    assert!(!stress_pool.is_empty());
    let config = LifetimeConfig {
        epochs: 6,
        max_stress: 0.9,
        vectors_per_epoch: 200,
        stress_pool,
        pool_bias: 0.4,
        ..Default::default()
    };
    let stats = run_lifetime(&result.design, &config).expect("valid lifetime config");
    assert_eq!(stats[0].detected_errors, 0, "fresh silicon is clean");
    assert!(stats.last().unwrap().detected_errors > 0, "aged silicon shows masked errors");
    assert!(stats.iter().all(|s| s.escapes == 0), "no error may escape: {stats:?}");
    let a = WearoutPredictor::default().assess(&stats);
    assert!(a.onset_epoch.is_some());
}

#[test]
fn selective_trace_capture_expands_window() {
    let lib = library();
    let nl = smoke_suite()[0].build(lib);
    let result = synthesize(&nl, MaskingOptions::default());
    let session = DebugSession::new(&result.design);
    let scale = uniform_aging(&result.design, 1.0).expect("valid factor");
    let vectors = random_vectors(nl.inputs().len(), 800, 31);
    let always = session
        .run(&scale, &vectors, 24, CapturePolicy::Always)
        .expect("valid session");
    let selective = session
        .run(&scale, &vectors, 24, CapturePolicy::OnSpeedPath)
        .expect("valid session");
    assert_eq!(always.window, 24);
    assert!(selective.window >= always.window);
}

#[test]
fn bench_format_circuit_full_pipeline() {
    // Parse an ISCAS-style .bench description and run it through the
    // whole flow — what a user with real benchmark files would do.
    let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\nOUTPUT(z)\n\
n1 = NAND(a, b)\nn2 = NAND(n1, c)\nn3 = NAND(n2, d)\nn4 = NAND(n3, e)\n\
n5 = NAND(n4, a)\ny = OR(n5, b)\nz = AND(a, c)\n";
    let nl = timemask::netlist::bench_format::parse_bench(src, library()).expect("valid bench");
    let mut result = synthesize(&nl, MaskingOptions::default());
    let verdict = verify(&mut result);
    assert!(verdict.all_ok());
    assert!(result.design.is_protected());
    // Export round trips.
    let v = timemask::netlist::verilog::write_verilog(&result.design.combined);
    assert!(v.contains("module"));
    let b = timemask::netlist::bench_format::write_bench(&nl).expect("bench-expressible");
    let back = timemask::netlist::bench_format::parse_bench(&b, library()).expect("roundtrip");
    for m in 0..32u64 {
        let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
        assert_eq!(nl.eval(&bits), back.eval(&bits));
    }
}
