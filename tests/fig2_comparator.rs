//! Integration test reproducing the paper's worked example (§4.2,
//! Fig. 2): the 2-bit comparator, end to end, with every number the
//! paper derives checked against our pipeline.

use std::sync::Arc;
use timemask::logic::Bdd;
use timemask::masking::{synthesize, verify, MaskingOptions};
use timemask::netlist::{circuits::comparator2, library::lsi10k_like, Delay};
use timemask::spcf::{node_based_spcf, path_based_spcf, short_path_spcf};
use timemask::sta::Sta;

/// Paper: "Assuming unit delay for an inverter and a delay of two units
/// for 2-input gates, the critical path delay of the 2-bit comparator
/// is 7" and `Δ_y = 6.3`.
#[test]
fn timing_matches_paper() {
    let nl = comparator2(Arc::new(lsi10k_like()));
    let sta = Sta::new(&nl);
    assert_eq!(sta.critical_path_delay(), Delay::new(7.0));
    // Two speed-paths within 10% of Δ, both through the b-input
    // inverters (highlighted in Fig. 2a).
    let paths = sta.enumerate_paths(nl.outputs()[0], Delay::new(6.3), 10);
    assert_eq!(paths.paths.len(), 2);
    assert!(paths.paths.iter().all(|p| p.delay == Delay::new(7.0)));
}

/// Paper: `Σ_y(a0, a1, b0, b1, Δ_y) = ā1 + ā0·b1`.
#[test]
fn spcf_matches_paper_formula() {
    let nl = comparator2(Arc::new(lsi10k_like()));
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let mut bdd = Bdd::new(4);

    // All three engines on the worked example.
    let sp = short_path_spcf(&nl, &sta, &mut bdd, target);
    let pb = path_based_spcf(&nl, &sta, &mut bdd, target);
    let nb = node_based_spcf(&nl, &sta, &mut bdd, target);

    // Expected formula (input order a0, a1, b0, b1 = BDD vars 0..3).
    let a0 = bdd.var(0);
    let a1 = bdd.var(1);
    let b1 = bdd.var(3);
    let na1 = bdd.not(a1);
    let na0 = bdd.not(a0);
    let t = bdd.and(na0, b1);
    let expect = bdd.or(na1, t);

    assert_eq!(sp.outputs[0].spcf, expect, "short-path");
    assert_eq!(pb.outputs[0].spcf, expect, "path-based");
    // Node-based over-approximates in general; on this example it is
    // exact (and must at least contain the exact set).
    assert!(bdd.is_subset(expect, nb.outputs[0].spcf));
    assert_eq!(sp.critical_pattern_count(&bdd), 10.0);
}

/// Golden numbers of the worked example, pinned against all three
/// engines: `Δ = 7`, `Δ_y = 6.3`, and 10 critical patterns. The
/// node-based over-approximation happens to be exact on Fig. 2, so all
/// three engines must report the same count.
#[test]
fn fig2_goldens_all_engines() {
    let nl = comparator2(Arc::new(lsi10k_like()));
    let sta = Sta::new(&nl);
    let delta = sta.critical_path_delay();
    assert_eq!(delta, Delay::new(7.0), "Δ");
    let target = delta * 0.9;
    assert_eq!(target, Delay::new(6.3), "Δ_y");

    let mut bdd = Bdd::new(4);
    for (name, set) in [
        ("short-path", short_path_spcf(&nl, &sta, &mut bdd, target)),
        ("path-based", path_based_spcf(&nl, &sta, &mut bdd, target)),
        ("node-based", node_based_spcf(&nl, &sta, &mut bdd, target)),
    ] {
        assert_eq!(set.target, target, "{name}: Δ_y");
        assert_eq!(set.outputs.len(), 1, "{name}: one critical output");
        assert_eq!(
            set.critical_pattern_count(&bdd),
            10.0,
            "{name}: critical pattern count"
        );
    }
}

/// Paper: `ỹ = (a0 + b̄0)(a1 + b̄1)` predicts `y` whenever `e = 1`, and
/// the simplified `e` covers `Σ_y` — i.e. 100 % masking.
#[test]
fn masking_circuit_reproduces_eqn_4() {
    let nl = comparator2(Arc::new(lsi10k_like()));
    let mut result = synthesize(&nl, MaskingOptions::default());
    assert_eq!(result.design.protected.len(), 1);

    let verdict = verify(&mut result);
    assert!(verdict.all_ok());
    assert_eq!(verdict.coverage(), 1.0);

    // The prediction must equal the paper's ỹ on every pattern where
    // the paper's e (= ā1 + b1) is 1; our e may differ syntactically but
    // must also cover Σ_y = ā1 + ā0b1.
    let p = &result.design.protected[0];
    for m in 0..16u64 {
        let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
        let (a0, a1, b0, b1) = (a[0], a[1], a[2], a[3]);
        let vals = result.design.masking.eval_all_nets(&a);
        let e = vals[p.e.index()];
        let yt = vals[p.ytilde.index()];
        let y = nl.eval(&a)[0];
        let sigma = !a1 || (!a0 && b1);
        if sigma {
            assert!(e, "pattern {m}: Σ_y pattern without e");
        }
        if e {
            assert_eq!(yt, y, "pattern {m}: bad prediction under e");
        }
        // Sanity against the paper's closed forms.
        let paper_ytilde = (a0 || !b0) && (a1 || !b1);
        if e && sigma {
            assert_eq!(yt, paper_ytilde, "pattern {m}: ỹ differs from Eqn. 4 inside Σ_y");
        }
    }
}

/// The paper's headline: the masking circuit has > 20 % slack and the
/// combined design is functionally transparent.
#[test]
fn slack_and_transparency() {
    let nl = comparator2(Arc::new(lsi10k_like()));
    let result = synthesize(&nl, MaskingOptions::default());
    assert!(result.report.slack_met);
    assert!(result.report.slack_percent >= 20.0);
    for m in 0..16u64 {
        let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
        assert_eq!(result.design.combined.eval(&a), nl.eval(&a));
    }
}
