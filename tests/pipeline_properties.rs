//! Property-based integration tests over randomly generated circuits:
//! the cross-crate invariants that make the reproduction trustworthy.
//!
//! Runs on the in-repo `tm-testkit` property runner; a failing case
//! prints its seed (reproduce with `TM_PROP_SEED=<seed>`).

use std::sync::Arc;
use timemask::logic::Bdd;
use timemask::masking::{synthesize, verify, MaskingOptions};
use timemask::netlist::generate::{generate, GeneratorSpec};
use timemask::netlist::library::lsi10k_like;
use timemask::netlist::Netlist;
use timemask::spcf::{node_based_spcf, path_based_spcf, short_path_spcf};
use timemask::sta::Sta;
use tm_testkit::prop::{check, Config, Gen};
use tm_testkit::{prop_assert, prop_assert_eq};

fn gen_small_circuit(g: &mut Gen) -> Netlist {
    let inputs = g.gen_range(4usize..10);
    let outputs = g.gen_range(2usize..5);
    let gates = g.gen_range(20usize..60);
    let seed = g.gen_range(0u64..1_000_000);
    let mut spec = GeneratorSpec::sized(format!("prop_{seed}"), inputs, outputs, gates);
    spec.seed = seed;
    generate(&spec, Arc::new(lsi10k_like()))
}

/// The two exact SPCF engines agree on every circuit and target,
/// and the node-based engine over-approximates both.
#[test]
fn spcf_engine_hierarchy() {
    check(
        "spcf_engine_hierarchy",
        &Config::with_cases(24),
        |g| (gen_small_circuit(g), g.gen_range(0.6f64..0.98)),
        |(nl, frac)| {
            let sta = Sta::new(nl);
            let target = sta.critical_path_delay() * *frac;
            let mut bdd = Bdd::new(nl.inputs().len());
            let sp = short_path_spcf(nl, &sta, &mut bdd, target);
            let pb = path_based_spcf(nl, &sta, &mut bdd, target);
            let nb = node_based_spcf(nl, &sta, &mut bdd, target);
            prop_assert_eq!(sp.outputs.len(), pb.outputs.len());
            prop_assert_eq!(sp.outputs.len(), nb.outputs.len());
            for ((a, b), c) in sp.outputs.iter().zip(&pb.outputs).zip(&nb.outputs) {
                prop_assert_eq!(a.output, b.output);
                prop_assert_eq!(a.spcf, b.spcf); // exact engines identical
                prop_assert!(bdd.is_subset(a.spcf, c.spcf)); // node-based ⊇ exact
            }
            Ok(())
        },
    );
}

/// SPCF patterns really are slow: exhaustive dynamic cross-check on
/// circuits small enough to enumerate. Floating-mode analysis is a
/// worst case over previous states, so every pattern *outside* the
/// SPCF settles within the target from every predecessor.
#[test]
fn non_spcf_patterns_settle_in_time() {
    check(
        "non_spcf_patterns_settle_in_time",
        &Config::with_cases(24),
        |g| g.gen_range(0u64..10_000),
        |seed| {
            let mut spec = GeneratorSpec::sized(format!("dyn_{seed}"), 6, 2, 24);
            spec.seed = *seed;
            let nl = generate(&spec, Arc::new(lsi10k_like()));
            let sta = Sta::new(&nl);
            let target = sta.critical_path_delay() * 0.9;
            let mut bdd = Bdd::new(6);
            let spcf = short_path_spcf(&nl, &sta, &mut bdd, target);
            let sim = timemask::sim::timing::TimingSim::new(&nl);
            for m in 0..64u64 {
                let next: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
                // Worst settle time at each critical output over a sample of
                // predecessor states.
                for p in [0u64, 21, 42, 63] {
                    let prev: Vec<bool> = (0..6).map(|i| (p >> i) & 1 == 1).collect();
                    let r = sim.transition(&prev, &next, target);
                    for out in &spcf.outputs {
                        let pos = nl.outputs().iter().position(|&o| o == out.output).unwrap();
                        if !bdd.eval(out.spcf, &next) {
                            prop_assert!(
                                r.output_settle[pos] <= target,
                                "non-SPCF pattern {m} settled late at output {pos}"
                            );
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Masking synthesis is always sound: exact verification passes and
/// the combined design is functionally transparent on every
/// generated circuit.
#[test]
fn masking_always_verifies() {
    check(
        "masking_always_verifies",
        &Config::with_cases(24),
        gen_small_circuit,
        |nl| {
            let mut result = synthesize(nl, MaskingOptions::default());
            let verdict = verify(&mut result);
            prop_assert!(verdict.all_ok());
            prop_assert_eq!(verdict.coverage(), 1.0);
            // Spot functional transparency dynamically too.
            let n = nl.inputs().len();
            for m in [0u64, 1, (1 << n) - 1, 0xAA % (1 << n)] {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                prop_assert_eq!(result.design.combined.eval(&a), nl.eval(&a));
            }
            Ok(())
        },
    );
}

/// Netlist ↔ SOP-network conversions preserve behaviour.
#[test]
fn extraction_and_mapping_roundtrip() {
    check(
        "extraction_and_mapping_roundtrip",
        &Config::with_cases(24),
        gen_small_circuit,
        |nl| {
            use timemask::netlist::extract::{extract, ExtractOptions};
            use timemask::netlist::map::{tech_map, MapOptions};
            let net = extract(nl, ExtractOptions::default());
            let remapped = tech_map(&net, nl.library().clone(), MapOptions::default());
            let n = nl.inputs().len();
            for m in 0..(1u64 << n).min(256) {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                prop_assert_eq!(nl.eval(&a), net.eval(&a));
                prop_assert_eq!(nl.eval(&a), remapped.eval(&a));
            }
            prop_assert!(remapped.check().is_empty());
            Ok(())
        },
    );
}

/// BLIF round-trips generated technology-independent networks.
#[test]
fn blif_roundtrip() {
    check("blif_roundtrip", &Config::with_cases(24), gen_small_circuit, |nl| {
        use timemask::netlist::blif::{parse_blif, write_blif};
        use timemask::netlist::extract::{extract, ExtractOptions};
        let net = extract(nl, ExtractOptions::default());
        let text = write_blif(&net);
        let back = parse_blif(&text).expect("roundtrip parses");
        let n = nl.inputs().len();
        for m in 0..(1u64 << n).min(128) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            prop_assert_eq!(net.eval(&a), back.eval(&a));
        }
        Ok(())
    });
}
