#!/usr/bin/env bash
# Offline CI for the timemask workspace.
#
# 1. Guard the hermetic-build policy (DESIGN.md §5): every dependency of
#    every workspace crate must itself be a workspace path dependency —
#    no registry (crates.io or mirror) or git sources, ever.
# 2. Build and test the whole workspace with `--offline`, proving the
#    tree compiles and passes with no network and no registry cache.
# 3. Smoke-run the SPCF bench with telemetry enabled and validate the
#    emitted metrics snapshot against the closed schema registry
#    (unknown metric names, malformed histograms, or a schema-version
#    bump all fail CI here, not in a downstream dashboard).
# 4. Panic audit (DESIGN.md §7): non-test library code may only contain
#    panic-capable calls (`unwrap()`, `expect(`, `panic!(`) in files
#    allowlisted — with justification — in scripts/panic_allowlist.txt.
#    Untrusted-input paths (parsers, runtime entry points) must return
#    `TmError` instead. Stale allowlist entries fail too.
# 5. Fuzz smoke: the mutation-based BLIF parser fuzz suite (hundreds of
#    adversarial documents; any panic fails the run).
# 6. Parallel smoke (DESIGN.md §8): rerun the differential SPCF oracle
#    suite with the per-output driver sharded across 4 workers — `jobs`
#    must never change a result.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermetic-dependency guard =="
# `cargo metadata` lists every resolved package; workspace path
# dependencies have "source": null, anything fetched has a source URL.
# No jq in the image, so scan the JSON for non-null "source" keys.
metadata=$(cargo metadata --format-version 1 --offline)
if printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | grep -q .; then
    echo "ERROR: non-workspace dependencies found:" >&2
    printf '%s' "$metadata" | grep -o '"name":"[^"]*","version":"[^"]*","id":"[^"]*","license' \
        | head -20 >&2 || true
    printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | sort -u >&2
    echo "The workspace must stay hermetic: extend crates/testkit instead" >&2
    echo "of adding a dependency (see DESIGN.md §5)." >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== offline release build =="
cargo build --release --offline --workspace --all-targets

echo "== offline workspace tests =="
cargo test -q --offline --workspace

echo "== telemetry smoke bench + schema validation =="
metrics_json=target/tm-bench/ci-spcf-metrics.json
rm -f "$metrics_json"
cargo bench -q --offline -p tm-bench --bench spcf_algorithms -- \
    --samples 1 --smoke --metrics-out "$metrics_json"
test -s "$metrics_json" || { echo "ERROR: bench wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- "$metrics_json"

echo "== BDD micro-bench smoke + cache-stats sanity =="
# The bdd_ops kernels exercise the hot core directly; any SPCF workload
# must hit the ITE computed cache, so a snapshot with zero
# `bdd.cache.hits` means the cache or its instrumentation regressed.
bdd_metrics_json=target/tm-bench/ci-bdd-metrics.json
rm -f "$bdd_metrics_json"
cargo bench -q --offline -p tm-bench --bench bdd_ops -- \
    --samples 1 --metrics-out "$bdd_metrics_json"
test -s "$bdd_metrics_json" || { echo "ERROR: bdd_ops wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- \
    --require-nonzero bdd.cache.hits --require-nonzero bdd.unique.hits \
    "$bdd_metrics_json" "$metrics_json"

echo "== panic audit (non-test library code) =="
audit=$(mktemp)
# Everything before the first `#[cfg(test)]` in each library source file
# (test modules sit at the end of files in this workspace); demo binaries
# under src/bin/ are not library code. Comment-only lines are skipped.
find crates/*/src src -name '*.rs' ! -path '*/bin/*' | sort | while read -r f; do
    awk -v F="$f" '/#\[cfg\(test\)\]/{exit} {print F":"FNR": "$0}' "$f"
done | grep -E '\.unwrap\(\)|\.expect\(|panic!\(' \
     | grep -vE ':[0-9]+: *//' > "$audit" || true
offenders=$(cut -d: -f1 "$audit" | sort -u)
audit_fail=0
for f in $offenders; do
    if ! grep -qxF "$f" scripts/panic_allowlist.txt; then
        echo "ERROR: $f has panic-capable calls but is not allowlisted:" >&2
        grep "^$f:" "$audit" >&2
        audit_fail=1
    fi
done
while read -r entry; do
    case "$entry" in ''|\#*) continue ;; esac
    if ! printf '%s\n' "$offenders" | grep -qxF "$entry"; then
        echo "ERROR: stale allowlist entry: $entry (no panic-capable calls remain)" >&2
        audit_fail=1
    fi
done < scripts/panic_allowlist.txt
if [ "$audit_fail" -ne 0 ]; then
    echo "Convert the panic to a TmError (untrusted input) or justify the" >&2
    echo "file in scripts/panic_allowlist.txt (see DESIGN.md §7)." >&2
    exit 1
fi
rm -f "$audit"
echo "ok: every panic-capable library file is allowlisted"

echo "== parser fuzz smoke =="
cargo test -q --offline -p tm-netlist --test blif_fuzz

echo "== parallel driver smoke (TM_SPCF_JOBS=4) =="
TM_SPCF_JOBS=4 cargo test -q --offline -p tm-spcf --test differential_oracle

echo "== serve smoke (daemon + loadgen + admission shed) =="
# Start the daemon on an ephemeral port with a deliberately tiny
# admission gate, drive it with the load generator's smoke mode (which
# includes a connection burst that must trip admission control), and
# validate the STATS metrics against the closed schema.
serve_metrics_json=target/tm-bench/ci-serve-metrics.json
serve_log=target/tm-bench/ci-serve.log
rm -f "$serve_metrics_json"
mkdir -p target/tm-bench
./target/release/tm-server --addr 127.0.0.1:0 --workers 2 --admit 1 \
    > "$serve_log" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    serve_addr=$(sed -n 's/^listening //p' "$serve_log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "${serve_addr:-}" ] || { echo "ERROR: tm-server never reported its address" >&2; exit 1; }
./target/release/loadgen --addr "$serve_addr" --smoke --expect-shed \
    --stats-out "$serve_metrics_json"
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
test -s "$serve_metrics_json" || { echo "ERROR: loadgen wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- \
    --require-nonzero serve.requests --require-nonzero serve.shed \
    "$serve_metrics_json"

echo "CI OK"
