#!/usr/bin/env bash
# Offline CI for the timemask workspace.
#
# 1. Guard the hermetic-build policy (DESIGN.md §5): every dependency of
#    every workspace crate must itself be a workspace path dependency —
#    no registry (crates.io or mirror) or git sources, ever.
# 2. Build and test the whole workspace with `--offline`, proving the
#    tree compiles and passes with no network and no registry cache.
# 3. Smoke-run the SPCF bench with telemetry enabled and validate the
#    emitted metrics snapshot against the closed schema registry
#    (unknown metric names, malformed histograms, or a schema-version
#    bump all fail CI here, not in a downstream dashboard).
# 4. Panic audit (DESIGN.md §7): non-test library code may only contain
#    panic-capable calls (`unwrap()`, `expect(`, `panic!(`) in files
#    allowlisted — with justification — in scripts/panic_allowlist.txt.
#    Untrusted-input paths (parsers, runtime entry points) must return
#    `TmError` instead. Stale allowlist entries fail too.
# 5. Fuzz smoke: the mutation-based BLIF parser fuzz suite (hundreds of
#    adversarial documents; any panic fails the run).
# 6. Parallel smoke (DESIGN.md §8): rerun the differential SPCF oracle
#    suite with the per-output driver sharded across 4 workers — `jobs`
#    must never change a result.
# 7. Serve + trace smoke: boot the daemon, drive it with loadgen, pull
#    a flight-recorder export over the `trace` verb, and validate the
#    Chrome trace JSON (nesting, phase sums) with `tm-profile --check`.
# 8. Dormant-overhead guard: a fresh `bdd_ops` smoke run must stay
#    within 2% of the committed BENCH_bdd.json medians — the always-on
#    recorder's gate checks must cost nothing while dormant.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermetic-dependency guard =="
# `cargo metadata` lists every resolved package; workspace path
# dependencies have "source": null, anything fetched has a source URL.
# No jq in the image, so scan the JSON for non-null "source" keys.
metadata=$(cargo metadata --format-version 1 --offline)
if printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | grep -q .; then
    echo "ERROR: non-workspace dependencies found:" >&2
    printf '%s' "$metadata" | grep -o '"name":"[^"]*","version":"[^"]*","id":"[^"]*","license' \
        | head -20 >&2 || true
    printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | sort -u >&2
    echo "The workspace must stay hermetic: extend crates/testkit instead" >&2
    echo "of adding a dependency (see DESIGN.md §5)." >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== offline release build =="
cargo build --release --offline --workspace --all-targets

echo "== offline workspace tests =="
cargo test -q --offline --workspace

echo "== telemetry smoke bench + schema validation =="
metrics_json=target/tm-bench/ci-spcf-metrics.json
rm -f "$metrics_json"
cargo bench -q --offline -p tm-bench --bench spcf_algorithms -- \
    --samples 1 --smoke --metrics-out "$metrics_json"
test -s "$metrics_json" || { echo "ERROR: bench wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- "$metrics_json"

echo "== BDD micro-bench smoke + cache-stats sanity =="
# The bdd_ops kernels exercise the hot core directly; any SPCF workload
# must hit the ITE computed cache, so a snapshot with zero
# `bdd.cache.hits` means the cache or its instrumentation regressed.
bdd_metrics_json=target/tm-bench/ci-bdd-metrics.json
rm -f "$bdd_metrics_json"
cargo bench -q --offline -p tm-bench --bench bdd_ops -- \
    --samples 1 --metrics-out "$bdd_metrics_json"
test -s "$bdd_metrics_json" || { echo "ERROR: bdd_ops wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- \
    --require-nonzero bdd.cache.hits --require-nonzero bdd.unique.hits \
    "$bdd_metrics_json" "$metrics_json"

echo "== panic audit (non-test library code) =="
audit=$(mktemp)
raw=$(mktemp)
# Everything before the first `#[cfg(test)]` in each library source file
# (test modules sit at the end of files in this workspace); demo binaries
# under src/bin/ are not library code. Comment-only lines are skipped.
# One awk pass over every file — a per-file loop with its failures
# swallowed can silently lose a file's lines under load and misreport
# its allowlist entry as stale; here an awk failure aborts the script.
find crates/*/src src -name '*.rs' ! -path '*/bin/*' -print0 | sort -z \
    | xargs -0 awk 'FNR==1{intest=0} /#\[cfg\(test\)\]/{intest=1}
                    !intest{print FILENAME":"FNR": "$0}' > "$raw"
grep -E '\.unwrap\(\)|\.expect\(|panic!\(' "$raw" \
     | grep -vE ':[0-9]+: *//' > "$audit" || true
rm -f "$raw"
offenders=$(cut -d: -f1 "$audit" | sort -u)
audit_fail=0
for f in $offenders; do
    if ! grep -qxF "$f" scripts/panic_allowlist.txt; then
        echo "ERROR: $f has panic-capable calls but is not allowlisted:" >&2
        grep "^$f:" "$audit" >&2
        audit_fail=1
    fi
done
while read -r entry; do
    case "$entry" in ''|\#*) continue ;; esac
    if ! printf '%s\n' "$offenders" | grep -qxF "$entry"; then
        echo "ERROR: stale allowlist entry: $entry (no panic-capable calls remain)" >&2
        audit_fail=1
    fi
done < scripts/panic_allowlist.txt
if [ "$audit_fail" -ne 0 ]; then
    echo "Convert the panic to a TmError (untrusted input) or justify the" >&2
    echo "file in scripts/panic_allowlist.txt (see DESIGN.md §7)." >&2
    exit 1
fi
rm -f "$audit"
echo "ok: every panic-capable library file is allowlisted"

echo "== parser fuzz smoke =="
cargo test -q --offline -p tm-netlist --test blif_fuzz

echo "== parallel driver smoke (TM_SPCF_JOBS=4) =="
TM_SPCF_JOBS=4 cargo test -q --offline -p tm-spcf --test differential_oracle

echo "== serve smoke (daemon + loadgen + admission shed) =="
# Start the daemon on an ephemeral port with a deliberately tiny
# admission gate, drive it with the load generator's smoke mode (which
# includes a connection burst that must trip admission control), and
# validate the STATS metrics against the closed schema.
serve_metrics_json=target/tm-bench/ci-serve-metrics.json
serve_log=target/tm-bench/ci-serve.log
rm -f "$serve_metrics_json"
mkdir -p target/tm-bench
./target/release/tm-server --addr 127.0.0.1:0 --workers 2 --admit 1 \
    > "$serve_log" 2>/dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    serve_addr=$(sed -n 's/^listening //p' "$serve_log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "${serve_addr:-}" ] || { echo "ERROR: tm-server never reported its address" >&2; exit 1; }
./target/release/loadgen --addr "$serve_addr" --smoke --expect-shed \
    --stats-out "$serve_metrics_json"
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
test -s "$serve_metrics_json" || { echo "ERROR: loadgen wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- \
    --require-nonzero serve.requests --require-nonzero serve.shed \
    "$serve_metrics_json"

echo "== trace smoke (flight recorder + trace verb + tm-profile --check) =="
# Boot the daemon with --slow-ms 0 so every request trips slow-capture,
# serve the loadgen smoke mix, then pull a `trace` export and validate
# it end to end: Chrome trace JSON well-formed, phase spans nest per
# (pid, tid), per-request phase durations sum within the request's wall
# time, and the stats snapshot proves events actually flowed.
trace_metrics_json=target/tm-bench/ci-trace-metrics.json
trace_export_json=target/tm-bench/ci-trace-export.json
trace_log=target/tm-bench/ci-trace-serve.log
rm -f "$trace_metrics_json" "$trace_export_json"
./target/release/tm-server --addr 127.0.0.1:0 --workers 2 --slow-ms 0 \
    > "$trace_log" 2>/dev/null &
trace_pid=$!
trap 'kill "$trace_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    trace_addr=$(sed -n 's/^listening //p' "$trace_log")
    [ -n "$trace_addr" ] && break
    sleep 0.1
done
[ -n "${trace_addr:-}" ] || { echo "ERROR: tm-server never reported its address" >&2; exit 1; }
./target/release/loadgen --addr "$trace_addr" --smoke --stats-out "$trace_metrics_json"
./target/release/tm-profile --addr "$trace_addr" --check --out "$trace_export_json"
kill "$trace_pid" 2>/dev/null || true
trap - EXIT
test -s "$trace_export_json" || { echo "ERROR: tm-profile wrote no trace export" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- \
    --require-nonzero serve.trace.events --require-nonzero serve.slow.captured \
    "$trace_metrics_json"

echo "== flight-recorder dormant-overhead guard (bdd_ops medians, +2%) =="
# The recorder's `recording()` gate rides the BDD hot core; a dormant
# recorder must stay free. Wall-clock medians are noisy, so a failing
# comparison retries before it is believed.
guard_ok=0
for attempt in 1 2 3; do
    cargo bench -q --offline -p tm-bench --bench bdd_ops -- --smoke > /dev/null
    if cargo run -q --offline --release -p tm-bench --bin bench_guard -- \
        --fresh target/tm-bench/bdd_ops.json --baseline BENCH_bdd.json \
        --tolerance-pct 2; then
        guard_ok=1
        break
    fi
    echo "overhead-guard attempt $attempt over tolerance; retrying"
done
[ "$guard_ok" -eq 1 ] || { echo "ERROR: dormant tracing overhead exceeds 2%" >&2; exit 1; }

echo "CI OK"
