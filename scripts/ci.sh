#!/usr/bin/env bash
# Offline CI for the timemask workspace.
#
# 1. Guard the hermetic-build policy (DESIGN.md §5): every dependency of
#    every workspace crate must itself be a workspace path dependency —
#    no registry (crates.io or mirror) or git sources, ever.
# 2. Build and test the whole workspace with `--offline`, proving the
#    tree compiles and passes with no network and no registry cache.
# 3. Smoke-run the SPCF bench with telemetry enabled and validate the
#    emitted metrics snapshot against the closed schema registry
#    (unknown metric names, malformed histograms, or a schema-version
#    bump all fail CI here, not in a downstream dashboard).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== hermetic-dependency guard =="
# `cargo metadata` lists every resolved package; workspace path
# dependencies have "source": null, anything fetched has a source URL.
# No jq in the image, so scan the JSON for non-null "source" keys.
metadata=$(cargo metadata --format-version 1 --offline)
if printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | grep -q .; then
    echo "ERROR: non-workspace dependencies found:" >&2
    printf '%s' "$metadata" | grep -o '"name":"[^"]*","version":"[^"]*","id":"[^"]*","license' \
        | head -20 >&2 || true
    printf '%s' "$metadata" | grep -o '"source":"[^"]*"' | sort -u >&2
    echo "The workspace must stay hermetic: extend crates/testkit instead" >&2
    echo "of adding a dependency (see DESIGN.md §5)." >&2
    exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== offline release build =="
cargo build --release --offline --workspace --all-targets

echo "== offline workspace tests =="
cargo test -q --offline --workspace

echo "== telemetry smoke bench + schema validation =="
metrics_json=target/tm-bench/ci-spcf-metrics.json
rm -f "$metrics_json"
cargo bench -q --offline -p tm-bench --bench spcf_algorithms -- \
    --samples 1 --smoke --metrics-out "$metrics_json"
test -s "$metrics_json" || { echo "ERROR: bench wrote no metrics snapshot" >&2; exit 1; }
cargo run -q --offline --release -p tm-telemetry --bin validate_metrics -- "$metrics_json"

echo "CI OK"
